"""On-disk store of recorded packed traces (record-once / analyze-many).

The injection campaigns and sensitivity sweeps decouple *recording* (one
functional simulation per (workload, seed, injection) triple) from
*analysis* (one cheap detector pass per configuration).  This store
persists each recorded run so an N-configuration sweep -- or a re-run of
the same campaign -- performs the simulation exactly once and replays the
packed trace from disk for every other consumer.

Keying: every entry is addressed by a *namespace* (the caller's identity
string for the program being run -- workload name plus its parameters)
plus a tuple of run components (seed, injection target, scheduler knobs).
The digest also folds in the store schema and the trace-format version,
so format bumps miss cleanly instead of decoding garbage.  See
``docs/trace-format.md`` for the full key scheme.

Entries are written atomically (write-then-rename), mirroring the
campaign cache in :mod:`repro.experiments.runner`, so concurrent sweep
processes sharing one ``REPRO_CACHE_DIR`` never observe torn files.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.trace.packed import PackedTrace
from repro.trace.serialize import (
    decode_packed_trace,
    encode_packed_trace,
)

#: Bump when the entry layout changes incompatibly.
_STORE_SCHEMA = 1

#: Folded into every digest: a v2-format bump must invalidate entries.
_FORMAT_TAG = "CORDTRC2"

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


class PackedTraceStore:
    """Directory-backed store of recorded runs.

    A *run entry* is one recorded execution: the packed trace plus a
    small picklable ``extra`` dict (e.g. which sync instance the injector
    removed).  A *value entry* is a bare picklable object (e.g. a
    workload's dynamic sync-instance count) keyed the same way.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def _digest(namespace: str, components: Tuple) -> str:
        ident = repr((_STORE_SCHEMA, _FORMAT_TAG, namespace, components))
        return hashlib.sha256(ident.encode()).hexdigest()[:20]

    def _path(self, kind: str, namespace: str,
              components: Tuple) -> Path:
        # A readable prefix (for humans poking at the cache dir) plus the
        # collision-resistant digest (the actual key).
        prefix = _SAFE.sub("-", namespace)[:40].strip("-") or "run"
        return self.root / (
            "%s-%s-%s.pkl"
            % (kind, prefix, self._digest(namespace, components))
        )

    # -- run entries -----------------------------------------------------------

    def load_run(
        self, namespace: str, components: Tuple
    ) -> Optional[Tuple[PackedTrace, Dict[str, Any]]]:
        """The recorded run for this key, or None (miss/stale/corrupt)."""
        path = self._path("trace", namespace, components)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            packed = decode_packed_trace(entry["trace"])
            extra = entry["extra"]
        except Exception:
            return None  # stale or truncated entry: re-record
        return packed, extra

    def store_run(
        self,
        namespace: str,
        components: Tuple,
        packed: PackedTrace,
        extra: Dict[str, Any],
    ) -> None:
        entry = {"trace": encode_packed_trace(packed), "extra": extra}
        self._write(self._path("trace", namespace, components), entry)

    # -- bare value entries ------------------------------------------------------

    def load_value(self, namespace: str, components: Tuple):
        """A cached picklable value for this key, or None."""
        path = self._path("value", namespace, components)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            return None

    def store_value(self, namespace: str, components: Tuple,
                    value) -> None:
        self._write(self._path("value", namespace, components), value)

    # -- plumbing ----------------------------------------------------------------

    def _write(self, path: Path, payload) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        with tmp.open("wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
