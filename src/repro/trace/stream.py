"""The :class:`Trace` container.

A trace is the totally-ordered list of :class:`MemoryEvent` objects observed
in one execution, plus run-level metadata: final per-thread instruction
counts, whether the run hung (fault injection can deadlock a barrier), and
the program name.

Since the engine records into columnar :class:`~repro.trace.packed.PackedTrace`
buffers, a trace may be *packed-backed*: the event-object list then does
not exist until something asks for it (``.events`` materializes lazily).
Detectors with a ``process_packed`` path, the serializer, and the
record-once pipeline never pay for the object view.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.trace.events import MemoryEvent


class Trace:
    """A recorded execution: ordered events plus run metadata.

    Attributes:
        events: global interleaving order of all shared-memory accesses
            (materialized lazily when the trace is packed-backed).
        packed: the columnar backing (:class:`PackedTrace`) when the trace
            came from the recording engine or the v2 codec, else None.
        final_icounts: per-thread instruction count at termination (indexed
            by thread id); includes compute instructions.
        hung: True when the watchdog stopped a deadlocked run.
        name: program/workload name.
        seed: scheduler seed the run used (diagnostics / reproducibility).

    Args:
        copy: when False, ``events`` must be an already-owned list and is
            adopted without the defensive copy (the record hot path and
            the codec own their lists; everyone else keeps the default).
    """

    def __init__(
        self,
        events: Sequence[MemoryEvent],
        final_icounts: Sequence[int],
        name: str = "trace",
        hung: bool = False,
        seed: Optional[int] = None,
        copy: bool = True,
    ):
        self._events: Optional[List[MemoryEvent]] = (
            list(events) if copy else events
        )
        self.packed = None
        self.final_icounts: List[int] = list(final_icounts)
        self.name = name
        self.hung = hung
        self.seed = seed

    @classmethod
    def from_packed(cls, packed) -> "Trace":
        """A trace view over columnar storage; events materialize lazily."""
        trace = cls.__new__(cls)
        trace._events = None
        trace.packed = packed
        trace.final_icounts = list(packed.final_icounts)
        trace.name = packed.name
        trace.hung = packed.hung
        trace.seed = packed.seed
        return trace

    @property
    def events(self) -> List[MemoryEvent]:
        events = self._events
        if events is None:
            events = self._events = self.packed.materialize_events()
        return events

    @property
    def n_threads(self) -> int:
        return len(self.final_icounts)

    def __len__(self) -> int:
        if self._events is None:
            return len(self.packed)
        return len(self._events)

    def __iter__(self) -> Iterator[MemoryEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> MemoryEvent:
        return self.events[index]

    def events_of_thread(self, thread: int) -> List[MemoryEvent]:
        """All events issued by one thread, in program order."""
        return [e for e in self.events if e.thread == thread]

    def per_thread_sequences(self) -> Dict[int, List[tuple]]:
        """Per-thread sequences of event identity keys.

        Two executions of the same program are *per-thread equivalent* when
        these sequences match; replay verification requires it.
        """
        sequences: Dict[int, List[tuple]] = {
            t: [] for t in range(self.n_threads)
        }
        for event in self.events:
            sequences[event.thread].append(event.key())
        return sequences

    def addresses(self) -> List[int]:
        """Sorted distinct addresses touched."""
        if self._events is None:
            return sorted(set(self.packed.address))
        return sorted({e.address for e in self._events})

    def __repr__(self):
        return "Trace(name=%r, events=%d, threads=%d%s)" % (
            self.name,
            len(self),
            self.n_threads,
            ", HUNG" if self.hung else "",
        )
