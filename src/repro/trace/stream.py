"""The :class:`Trace` container.

A trace is the totally-ordered list of :class:`MemoryEvent` objects observed
in one execution, plus run-level metadata: final per-thread instruction
counts, whether the run hung (fault injection can deadlock a barrier), and
the program name.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.trace.events import MemoryEvent


class Trace:
    """A recorded execution: ordered events plus run metadata.

    Attributes:
        events: global interleaving order of all shared-memory accesses.
        final_icounts: per-thread instruction count at termination (indexed
            by thread id); includes compute instructions.
        hung: True when the watchdog stopped a deadlocked run.
        name: program/workload name.
        seed: scheduler seed the run used (diagnostics / reproducibility).
    """

    def __init__(
        self,
        events: Sequence[MemoryEvent],
        final_icounts: Sequence[int],
        name: str = "trace",
        hung: bool = False,
        seed: Optional[int] = None,
    ):
        self.events: List[MemoryEvent] = list(events)
        self.final_icounts: List[int] = list(final_icounts)
        self.name = name
        self.hung = hung
        self.seed = seed

    @property
    def n_threads(self) -> int:
        return len(self.final_icounts)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MemoryEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> MemoryEvent:
        return self.events[index]

    def events_of_thread(self, thread: int) -> List[MemoryEvent]:
        """All events issued by one thread, in program order."""
        return [e for e in self.events if e.thread == thread]

    def per_thread_sequences(self) -> Dict[int, List[tuple]]:
        """Per-thread sequences of event identity keys.

        Two executions of the same program are *per-thread equivalent* when
        these sequences match; replay verification requires it.
        """
        sequences: Dict[int, List[tuple]] = {
            t: [] for t in range(self.n_threads)
        }
        for event in self.events:
            sequences[event.thread].append(event.key())
        return sequences

    def addresses(self) -> List[int]:
        """Sorted distinct addresses touched."""
        return sorted({e.address for e in self.events})

    def __repr__(self):
        return "Trace(name=%r, events=%d, threads=%d%s)" % (
            self.name,
            len(self.events),
            self.n_threads,
            ", HUNG" if self.hung else "",
        )
