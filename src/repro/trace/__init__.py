"""Execution traces: the interface between the engine and the detectors.

The functional engine executes a program under a seeded interleaving
scheduler and produces a :class:`~repro.trace.stream.Trace`: the global
sequence of shared-memory access events, each labeled data/sync and carrying
the issuing thread's instruction count.  Detectors, the order recorder, the
timing model, and the replay verifier all consume traces.
"""

from repro.trace.events import MemoryEvent
from repro.trace.stream import Trace
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.conflicts import ConflictSummary, summarize_conflicts
from repro.trace.serialize import decode_trace, encode_trace

__all__ = [
    "ConflictSummary",
    "MemoryEvent",
    "Trace",
    "TraceStats",
    "compute_stats",
    "decode_trace",
    "encode_trace",
    "summarize_conflicts",
]
