"""Execution traces: the interface between the engine and the detectors.

The functional engine executes a program under a seeded interleaving
scheduler and produces a :class:`~repro.trace.stream.Trace`: the global
sequence of shared-memory access events, each labeled data/sync and carrying
the issuing thread's instruction count.  Detectors, the order recorder, the
timing model, and the replay verifier all consume traces.
"""

from repro.trace.events import MemoryEvent
from repro.trace.kernels import (
    ResidualView,
    SegmentPlan,
    kernel_backend,
    kernels_enabled,
)
from repro.trace.packed import PackedTrace
from repro.trace.stream import Trace
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.conflicts import ConflictSummary, summarize_conflicts
from repro.trace.serialize import (
    decode_packed_trace,
    decode_trace,
    encode_packed_trace,
    encode_packed_trace_v2,
    encode_trace,
    view_packed_trace,
)
from repro.trace.sharedmem import (
    SharedTraceHandle,
    SharedTraceMap,
    attach_trace,
    publish_trace,
    sharedmem_available,
    unpublish_trace,
)
from repro.trace.store import PackedTraceStore, mmap_enabled

__all__ = [
    "ConflictSummary",
    "MemoryEvent",
    "PackedTrace",
    "PackedTraceStore",
    "ResidualView",
    "SegmentPlan",
    "SharedTraceHandle",
    "SharedTraceMap",
    "Trace",
    "TraceStats",
    "attach_trace",
    "kernel_backend",
    "kernels_enabled",
    "compute_stats",
    "decode_packed_trace",
    "decode_trace",
    "encode_packed_trace",
    "encode_packed_trace_v2",
    "encode_trace",
    "mmap_enabled",
    "publish_trace",
    "sharedmem_available",
    "summarize_conflicts",
    "unpublish_trace",
    "view_packed_trace",
]
