"""Vectorized analysis kernels: numpy pre-passes over packed-trace columns.

CORD's core idea is that almost every access can be dismissed before any
timestamp work happens (check filters, lines absent from every cache).
This module applies the same filtering idea to the *simulation* of the
mechanism: one numpy pre-pass over a :class:`~repro.trace.packed.
PackedTrace`'s columns classifies and segments the event stream so the
per-event interpreter loops only touch the events that can still matter.

Everything computed here is a pure function of the recorded columns (plus,
where noted, the cache line mask), so one **analysis plan** is computed per
recorded trace and shared by every detector configuration of a sweep --
the record-once/analyze-many pipeline pays the classification cost once
and the per-configuration passes reap it eight times over.

Three plan products, all cached on the trace:

:class:`SegmentPlan` (per line mask)
    The stream cut into *runs* -- maximal spans of consecutive events
    issued by one thread to one cache line, containing no synchronization
    (each sync access is its own singleton segment) -- with the OR of the
    span's read and write word bits precomputed per run.  CORD's packed
    interpreter consumes whole runs at a time: when the line's check
    filter is valid at the thread's current clock, the entire run is a
    provable fast-path hit and collapses to two mask ORs.

:func:`word_residual` (config-independent)
    Data accesses to words only ever touched by a single thread can never
    race and leave no observable history for the happens-before oracles;
    the residual view keeps synchronization plus shared-word data
    accesses, in original order, and counts what was dropped.

:func:`line_residual` (per line mask)
    The same classification at cache-line granularity, for the
    vector-clock comparison detectors: sound only when metadata capacity
    is unlimited (a finite cache makes even private lines observable
    through the evictions they cause), so only the ``InfCache``
    configuration uses it.

Numpy is optional everywhere: every builder returns ``None`` when numpy
is unavailable -- or when ``REPRO_NO_NUMPY=1`` forces the pure-python
fallback -- and every consumer falls back to the scalar packed loop,
whose outputs are byte-identical by construction (pinned by the kernel
equivalence suite).
"""

from __future__ import annotations

import os
from typing import List, Optional

try:  # optional acceleration; the scalar loops remain the reference
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

_U64 = 0xFFFFFFFFFFFFFFFF

#: Environment escape hatch: force the pure-python fallback paths even
#: when numpy is importable (debugging / the equivalence suite).
NO_NUMPY_ENV = "REPRO_NO_NUMPY"


def kernels_enabled() -> bool:
    """Are the vectorized kernels active in this process?"""
    return _np is not None and not os.environ.get(NO_NUMPY_ENV)


def kernel_backend() -> str:
    """``"numpy"`` when the vectorized pre-passes are active, else
    ``"python"`` (the scalar packed loops)."""
    return "numpy" if kernels_enabled() else "python"


class SegmentPlan:
    """The event stream cut into same-thread/same-line data runs.

    ``starts`` holds the first event index of each segment plus a final
    sentinel (the trace length); segment *k* spans
    ``starts[k]:starts[k + 1]``.  ``sync`` marks singleton sync segments.
    ``read_masks``/``write_masks`` hold the OR of the segment's data
    read/write word bits (0 for sync segments).  All four are plain
    lists: the interpreter indexes them tens of thousands of times.
    """

    __slots__ = ("starts", "sync", "read_masks", "write_masks")

    def __init__(
        self,
        starts: List[int],
        sync: List[int],
        read_masks: List[int],
        write_masks: List[int],
    ):
        self.starts = starts
        self.sync = sync
        self.read_masks = read_masks
        self.write_masks = write_masks

    @property
    def n_segments(self) -> int:
        return len(self.starts) - 1


class ResidualView:
    """Compressed columns of the events a detector must still interpret.

    ``threads``/``addresses``/``flags``/``icounts`` hold the residual
    events in original trace order.  ``skipped_events`` counts what the
    prefilter removed; ``skipped_reads`` counts the removed data *reads*
    (the epoch detector reconstitutes its representation statistics from
    it).
    """

    __slots__ = (
        "threads",
        "addresses",
        "flags",
        "icounts",
        "skipped_events",
        "skipped_reads",
    )

    def __init__(
        self, threads, addresses, flags, icounts,
        skipped_events: int, skipped_reads: int,
    ):
        self.threads = threads
        self.addresses = addresses
        self.flags = flags
        self.icounts = icounts
        self.skipped_events = skipped_events
        self.skipped_reads = skipped_reads

    def __len__(self) -> int:
        return len(self.threads)


def _columns(packed):
    """The raw columns as numpy views (no copies)."""
    return (
        _np.frombuffer(packed.thread, dtype=_np.uint16),
        _np.frombuffer(packed.address, dtype=_np.uint64),
        _np.frombuffer(packed.flags, dtype=_np.uint8),
    )


def build_segment_plan(packed, line_mask: int) -> Optional[SegmentPlan]:
    """Segment a trace into data runs for the given cache line mask.

    Returns ``None`` when the kernels are disabled or the line geometry
    does not fit the 64-bit per-word masks (lines over 256 bytes).
    """
    if not kernels_enabled():
        return None
    line_mask &= _U64
    offset_mask = ~line_mask & _U64
    if offset_mask >> 2 >= 64:
        return None  # word bits would overflow a uint64 mask
    n = len(packed.thread)
    if n == 0:
        return SegmentPlan([0], [], [], [])
    thread, address, flags = _columns(packed)
    lines = address & _np.uint64(line_mask)
    sync = (flags & 2) != 0
    is_write = (flags & 1) != 0
    boundary = _np.ones(n, dtype=bool)
    boundary[1:] = (
        (thread[1:] != thread[:-1])
        | (lines[1:] != lines[:-1])
        | sync[1:]
        | sync[:-1]
    )
    seg_starts = _np.flatnonzero(boundary)
    words = (address & _np.uint64(offset_mask)) >> _np.uint64(2)
    wbits = _np.uint64(1) << words
    zero = _np.uint64(0)
    data = ~sync
    read_bits = _np.where(data & ~is_write, wbits, zero)
    write_bits = _np.where(data & is_write, wbits, zero)
    return SegmentPlan(
        seg_starts.tolist() + [n],
        sync[seg_starts].tolist(),
        _np.bitwise_or.reduceat(read_bits, seg_starts).tolist(),
        _np.bitwise_or.reduceat(write_bits, seg_starts).tolist(),
    )


def build_batched_segment_plans(
    packeds, line_mask: int,
) -> Optional[List[SegmentPlan]]:
    """Segment *k* traces in one arena pass; one plan per trace.

    Same-geometry recorded runs are concatenated column-wise and cut
    with a single boundary vector and a single ``reduceat``, amortizing
    numpy dispatch across the batch.  A boundary is forced at every run
    start, so no segment crosses a run and each returned plan is
    byte-identical to :func:`build_segment_plan` on that trace alone
    (pinned by the batch property suite).  Returns ``None`` exactly when
    the per-run builder would.
    """
    if not kernels_enabled():
        return None
    line_mask &= _U64
    offset_mask = ~line_mask & _U64
    if offset_mask >> 2 >= 64:
        return None  # word bits would overflow a uint64 mask
    counts = [len(p.thread) for p in packeds]
    total = sum(counts)
    if total == 0:
        return [SegmentPlan([0], [], [], []) for _ in packeds]
    cols = [_columns(p) for p in packeds if len(p.thread)]
    thread = _np.concatenate([c[0] for c in cols])
    address = _np.concatenate([c[1] for c in cols])
    flags = _np.concatenate([c[2] for c in cols])
    offs = [0]
    for count in counts:
        offs.append(offs[-1] + count)
    lines = address & _np.uint64(line_mask)
    sync = (flags & 2) != 0
    is_write = (flags & 1) != 0
    boundary = _np.ones(total, dtype=bool)
    boundary[1:] = (
        (thread[1:] != thread[:-1])
        | (lines[1:] != lines[:-1])
        | sync[1:]
        | sync[:-1]
    )
    for lo in offs[1:-1]:
        if lo < total:
            boundary[lo] = True  # no segment may cross a run boundary
    seg_starts = _np.flatnonzero(boundary)
    words = (address & _np.uint64(offset_mask)) >> _np.uint64(2)
    wbits = _np.uint64(1) << words
    zero = _np.uint64(0)
    data = ~sync
    read_all = _np.bitwise_or.reduceat(
        _np.where(data & ~is_write, wbits, zero), seg_starts
    )
    write_all = _np.bitwise_or.reduceat(
        _np.where(data & is_write, wbits, zero), seg_starts
    )
    sync_all = sync[seg_starts]
    plans: List[SegmentPlan] = []
    for k in range(len(packeds)):
        lo, hi = offs[k], offs[k + 1]
        if hi == lo:
            plans.append(SegmentPlan([0], [], [], []))
            continue
        i0 = int(_np.searchsorted(seg_starts, lo))
        i1 = int(_np.searchsorted(seg_starts, hi))
        plans.append(SegmentPlan(
            (seg_starts[i0:i1] - lo).tolist() + [hi - lo],
            sync_all[i0:i1].tolist(),
            read_all[i0:i1].tolist(),
            write_all[i0:i1].tolist(),
        ))
    return plans


def build_batched_word_residuals(packeds) -> Optional[List[ResidualView]]:
    """:func:`build_word_residual` over *k* traces in one arena pass."""
    if not kernels_enabled():
        return None
    return _batched_residuals(packeds, None)


def build_batched_line_residuals(
    packeds, line_mask: int,
) -> Optional[List[ResidualView]]:
    """:func:`build_line_residual` over *k* traces in one arena pass."""
    if not kernels_enabled():
        return None
    return _batched_residuals(packeds, line_mask)


def _shared_flags(keys, thread, data):
    """Boolean per-event array: is the event's ``keys`` value touched in
    data mode by more than one distinct thread?

    Only data events participate in the classification (sync accesses
    live in separate detector tables); sync events come back False.
    """
    n = len(keys)
    data_idx = _np.flatnonzero(data)
    shared = _np.zeros(n, dtype=bool)
    if len(data_idx) == 0:
        return shared
    key_d = keys[data_idx]
    thread_d = thread[data_idx]
    order = _np.lexsort((thread_d, key_d))
    key_s = key_d[order]
    thread_s = thread_d[order]
    group_start = _np.ones(len(key_s), dtype=bool)
    group_start[1:] = key_s[1:] != key_s[:-1]
    starts = _np.flatnonzero(group_start)
    ends = _np.concatenate([starts[1:], [len(key_s)]]) - 1
    # Sorted by thread within each key group: a group is shared iff its
    # first and last threads differ.
    shared_group = thread_s[starts] != thread_s[ends]
    shared_sorted = _np.repeat(
        shared_group, _np.diff(_np.concatenate([starts, [len(key_s)]]))
    )
    shared_data = _np.empty(len(key_s), dtype=bool)
    shared_data[order] = shared_sorted
    shared[data_idx] = shared_data
    return shared


def _batched_residuals(packeds, line_mask: Optional[int]):
    """Shared-word/-line classification over a run batch.

    Sharing is a *per-run* property -- two runs touching the same word
    from different threads must not contaminate each other -- so the
    group key is ``(run, word-or-line)``: one lexsort over the
    concatenated columns with run-major ordering, group breaks wherever
    the run or the key changes.  Each returned view is byte-identical to
    the per-run builder's.
    """
    counts = [len(p.thread) for p in packeds]
    total = sum(counts)
    if total == 0:
        return [ResidualView([], [], [], [], 0, 0) for _ in packeds]
    cols = [_columns(p) for p in packeds if len(p.thread)]
    thread = _np.concatenate([c[0] for c in cols])
    address = _np.concatenate([c[1] for c in cols])
    flags = _np.concatenate([c[2] for c in cols])
    run_ids = _np.repeat(_np.arange(len(counts), dtype=_np.int64), counts)
    if line_mask is None:
        keys = address
    else:
        keys = address & _np.uint64(line_mask & _U64)
    sync = (flags & 2) != 0
    data = ~sync
    is_write = (flags & 1) != 0

    shared = _np.zeros(total, dtype=bool)
    data_idx = _np.flatnonzero(data)
    if len(data_idx):
        key_d = keys[data_idx]
        thread_d = thread[data_idx]
        run_d = run_ids[data_idx]
        order = _np.lexsort((thread_d, key_d, run_d))
        key_s = key_d[order]
        thread_s = thread_d[order]
        run_s = run_d[order]
        group_start = _np.ones(len(key_s), dtype=bool)
        group_start[1:] = (
            (key_s[1:] != key_s[:-1]) | (run_s[1:] != run_s[:-1])
        )
        starts = _np.flatnonzero(group_start)
        ends = _np.concatenate([starts[1:], [len(key_s)]]) - 1
        shared_group = thread_s[starts] != thread_s[ends]
        shared_sorted = _np.repeat(
            shared_group,
            _np.diff(_np.concatenate([starts, [len(key_s)]])),
        )
        shared_data = _np.empty(len(key_s), dtype=bool)
        shared_data[order] = shared_sorted
        shared[data_idx] = shared_data

    keep = sync | shared
    views: List[ResidualView] = []
    lo = 0
    for k, packed in enumerate(packeds):
        hi = lo + counts[k]
        if hi == lo:
            views.append(ResidualView([], [], [], [], 0, 0))
        else:
            views.append(_residual_from_mask(
                packed, keep[lo:hi], data[lo:hi], is_write[lo:hi],
            ))
        lo = hi
    return views


def _residual_from_mask(packed, keep, data, is_write):
    icount = _np.frombuffer(packed.icount, dtype=_np.uint64)
    thread, address, flags = _columns(packed)
    dropped = ~keep
    skipped_reads = int(_np.count_nonzero(dropped & data & ~is_write))
    return ResidualView(
        thread[keep].tolist(),
        address[keep].tolist(),
        flags[keep].tolist(),
        icount[keep].tolist(),
        int(_np.count_nonzero(dropped)),
        skipped_reads,
    )


def build_word_residual(packed) -> Optional[ResidualView]:
    """Sync events plus data accesses to words shared between threads.

    Data accesses to single-thread words can neither race nor leave
    history any other thread will ever consult, so the happens-before
    oracles (Ideal, Epoch) interpret only this residual.  Returns
    ``None`` when the kernels are disabled.
    """
    if not kernels_enabled():
        return None
    if len(packed.thread) == 0:
        return ResidualView([], [], [], [], 0, 0)
    thread, address, flags = _columns(packed)
    sync = (flags & 2) != 0
    data = ~sync
    is_write = (flags & 1) != 0
    keep = sync | _shared_flags(address, thread, data)
    return _residual_from_mask(packed, keep, data, is_write)


def build_line_residual(packed, line_mask: int) -> Optional[ResidualView]:
    """Sync events plus data accesses to lines shared between threads.

    Line-granular variant for the vector-clock comparison detectors:
    a line touched by a single thread never appears in a remote cache,
    so its accesses can neither report nor influence anything -- but
    only when metadata capacity is unlimited.  With a finite cache the
    private line still competes for slots (its insertions evict shared
    lines), so callers must gate this on an infinite geometry.
    """
    if not kernels_enabled():
        return None
    if len(packed.thread) == 0:
        return ResidualView([], [], [], [], 0, 0)
    thread, address, flags = _columns(packed)
    lines = address & _np.uint64(line_mask & _U64)
    sync = (flags & 2) != 0
    data = ~sync
    is_write = (flags & 1) != 0
    keep = sync | _shared_flags(lines, thread, data)
    return _residual_from_mask(packed, keep, data, is_write)
