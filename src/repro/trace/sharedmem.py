"""Shared-memory publication of recorded traces for pool fan-out.

The pooled campaign runner (:class:`repro.experiments.runner.Suite`)
hands each worker process a *task*, and under record-once/analyze-many
many tasks re-analyze the same recorded trace.  Before this module the
only way a worker could reach a recording was the on-disk store -- one
full file read (and, pre-v3, one full deserialization) per task, N
physical copies of the same columns for N workers.

Here the parent instead *publishes* each warm recording once: the raw
v3 trace blob (exactly what :func:`~repro.trace.serialize.view_packed_trace`
consumes) is copied into one ``multiprocessing.shared_memory`` segment,
and the workers receive only a tiny picklable
:class:`SharedTraceHandle` (segment name, byte length, sha256).  Each
worker attaches, verifies the digest over the shared view, and builds a
zero-copy buffer-backed :class:`~repro.trace.packed.PackedTrace` whose
columns are ``memoryview`` casts straight into the shared pages -- N
analysis passes, one physical copy.

Integrity mirrors the store: a digest mismatch on attach raises
:class:`~repro.common.errors.StoreCorruptError`, which the consumers
(:func:`repro.injection.campaign.record_injected_once` via
:class:`SharedTraceMap`) translate into a counted fallback to the
durable store -- never analysis of garbage.

Lifecycle: the parent owns the segments (created in
``Suite._run_pool``, closed + unlinked in its ``finally``); workers
only ever attach.  CPython's ``resource_tracker`` would normally treat
an attach as ownership and *unlink the parent's segment* when the
short-lived worker exits -- :func:`_attach_segment` opts out
(``track=False`` where available, else an explicit unregister).
``REPRO_NO_SHM=1`` disables the whole path.
"""

from __future__ import annotations

import hashlib
import logging
import os
from collections import Counter
from typing import Any, Dict, NamedTuple, Optional, Tuple

from repro.common.errors import StoreCorruptError
from repro.trace.packed import PackedTrace
from repro.trace.serialize import view_packed_trace

logger = logging.getLogger("repro.trace.sharedmem")

#: Escape hatch: disable shared-memory trace publication entirely.
NO_SHM_ENV = "REPRO_NO_SHM"


def sharedmem_available() -> bool:
    """Whether shared-memory trace publication may be used."""
    if os.environ.get(NO_SHM_ENV):
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib, but stay graceful
        return False
    return True


class SharedTraceHandle(NamedTuple):
    """Picklable ticket for one published trace segment.

    ``size`` is the exact blob length (segments round up to page
    granularity) and ``digest`` is the sha256 hexdigest of the blob --
    verified on every attach, so a damaged or recycled segment is
    detected, never decoded.
    """

    name: str
    size: int
    digest: str


_shm_cls = None


def _shm_class():
    """A ``SharedMemory`` whose ``close()`` tolerates live exports.

    Columns are ``memoryview`` casts into the segment, and GC order
    between them and the segment object is arbitrary (worker interpreter
    shutdown especially); a ``close()`` that races a still-alive view
    must not spray ``BufferError`` tracebacks -- the map is released
    when the last view goes, and the OS reclaims it at process exit
    regardless.
    """
    global _shm_cls
    if _shm_cls is None:
        from multiprocessing import shared_memory

        class _QuietSharedMemory(shared_memory.SharedMemory):
            def close(self):
                try:
                    super().close()
                except BufferError:
                    pass

        _shm_cls = _QuietSharedMemory
    return _shm_cls


class _Attachment:
    """Keeps an attached segment alive for the columns viewing it.

    Stored as the trace's ``_backing``; teardown tolerates outstanding
    column views (the underlying map then closes when they are
    collected).
    """

    __slots__ = ("shm",)

    def __init__(self, shm):
        self.shm = shm

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:
            pass

    def __del__(self):  # pragma: no cover - GC-order dependent
        self.close()


def _attach_segment(name: str):
    """Attach to an existing segment *without* claiming ownership.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker on every attach (fixed by ``track=False`` in newer
    Pythons); left registered in a spawn-context worker, that worker's
    tracker would unlink the segment out from under the parent and
    every sibling when the worker exits.
    """
    try:
        return _shm_class()(name=name, track=False)
    except TypeError:
        shm = _shm_class()(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return shm


def publish_trace(blob: bytes) -> Tuple[SharedTraceHandle, Any]:
    """Copy one v3 trace blob into a fresh shared segment.

    Returns the picklable handle for workers plus the live segment
    object; the caller owns the segment and must release it through
    :func:`unpublish_trace` when the fan-out completes.
    """
    shm = _shm_class()(create=True, size=max(1, len(blob)))
    shm.buf[: len(blob)] = blob
    handle = SharedTraceHandle(
        shm.name, len(blob), hashlib.sha256(blob).hexdigest()
    )
    return handle, shm


def unpublish_trace(shm) -> None:
    """Close and unlink a segment created by :func:`publish_trace`.

    Fork-context children share the parent's resource tracker, so a
    child's attach-time unregister can strip the parent's own
    registration; re-registering just before the unlink keeps the
    tracker balanced (registration is a set, so this is a no-op when
    nothing was stripped) instead of the final unregister spraying a
    ``KeyError`` in the tracker process.
    """
    shm.close()
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def attach_trace(handle: SharedTraceHandle) -> PackedTrace:
    """Zero-copy :class:`PackedTrace` over a published segment.

    Verifies the handle's sha256 over the shared view before building
    any column (raises :class:`StoreCorruptError` on mismatch) and
    pins the attachment as the trace's backing.
    """
    shm = _attach_segment(handle.name)
    attachment = _Attachment(shm)
    blob = shm.buf[: handle.size]
    if hashlib.sha256(blob).hexdigest() != handle.digest:
        blob.release()
        attachment.close()
        raise StoreCorruptError(
            "shared trace segment %s failed its checksum" % handle.name
        )
    return view_packed_trace(blob, backing=attachment)


class SharedTraceMap:
    """Per-worker view of the parent's published recordings.

    Maps a run key (the store's ``components`` tuple) to
    ``(handle, extra)``.  :meth:`get` attaches lazily and caches;
    every failure is counted and degrades to ``None`` so the caller
    falls back to the durable store (and, cold, to re-recording).

    Attributes:
        stats: ``shm_attach_hits`` / ``shm_digest_mismatch`` /
            ``shm_attach_failed``.
    """

    def __init__(
        self,
        handles: Optional[
            Dict[Tuple, Tuple[SharedTraceHandle, Dict[str, Any]]]
        ] = None,
    ):
        self.handles = dict(handles or {})
        self.stats: Counter = Counter()
        self._cache: Dict[Tuple, Tuple[PackedTrace, Dict[str, Any]]] = {}

    def __len__(self) -> int:
        return len(self.handles)

    def get(
        self, key: Tuple
    ) -> Optional[Tuple[PackedTrace, Dict[str, Any]]]:
        """The published recording for ``key``, or ``None``."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        item = self.handles.get(key)
        if item is None:
            return None
        handle, extra = item
        try:
            packed = attach_trace(handle)
        except StoreCorruptError as exc:
            self.stats["shm_digest_mismatch"] += 1
            logger.warning("shared trace rejected for %r: %s", key, exc)
            return None
        except (OSError, ValueError) as exc:
            # Segment vanished (parent already cleaned up, name reuse
            # race) -- the store fallback covers it.
            self.stats["shm_attach_failed"] += 1
            logger.warning("shared trace unavailable for %r: %s", key, exc)
            return None
        self._cache[key] = (packed, extra)
        self.stats["shm_attach_hits"] += 1
        return self._cache[key]
