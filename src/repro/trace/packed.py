"""Columnar (struct-of-arrays) trace storage.

A :class:`PackedTrace` keeps one execution's event stream in five parallel
``array.array`` columns -- ``thread``/``address``/``flags``/``icount``/
``value`` -- instead of one :class:`~repro.trace.events.MemoryEvent` object
per access.  The engine records straight into the columns (five C-level
appends, no per-event object allocation), detectors with a
``process_packed`` path iterate the raw columns, and
:mod:`repro.trace.serialize` round-trips them to disk with one
``tobytes``/``frombytes`` per column.

The object view still exists -- :meth:`materialize_events` /
:meth:`to_trace` build the classic event list -- but it is produced
lazily, only for consumers that genuinely need event objects (replay
verification, diagnostics, the per-event detector paths).

Columns are normally owned ``array.array`` storage, but a trace may also
be *buffer-backed* (:meth:`PackedTrace.from_buffer`): its columns are
then read-only typed views over an external buffer -- an mmap-backed
store entry or a shared-memory segment -- so loading a recording copies
nothing.  See :func:`repro.trace.serialize.view_packed_trace`.

Flag encoding matches the on-disk format: bit 0 = write, bit 1 = sync.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence

from repro.common.types import AccessClass, AccessMode
from repro.trace.events import MemoryEvent
from repro.trace import kernels as _kernels

try:  # optional: vectorizes the derived-column computation
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is normally present
    _np = None

_U64 = 0xFFFFFFFFFFFFFFFF

#: Flag bits (shared with the serialized format).
FLAG_WRITE = 1
FLAG_SYNC = 2

#: Column typecodes, in canonical column order.
COLUMN_TYPECODES = (
    ("thread", "H"),   # u16 issuing thread
    ("address", "Q"),  # u64 byte address
    ("flags", "B"),    # u8  bit0=write bit1=sync
    ("icount", "Q"),   # u64 per-thread instruction count
    ("value", "q"),    # i64 value read or written
)

# The codec and the store rely on these exact widths; array typecode
# sizes are platform-dependent in principle, so fail loudly rather than
# write unreadable files.
for _name, _code in COLUMN_TYPECODES:
    _expected = {"H": 2, "Q": 8, "B": 1, "q": 8}[_code]
    if array(_code).itemsize != _expected:
        raise ImportError(
            "array typecode %r is %d bytes on this platform, expected %d"
            % (_code, array(_code).itemsize, _expected)
        )


class PackedTrace:
    """One recorded execution in struct-of-arrays form.

    Attributes:
        thread / address / flags / icount / value: the event columns
            (equal length; index *i* across all five is event *i*).
        final_icounts: per-thread instruction count at termination.
        name: program/workload name.
        hung: True when the watchdog stopped a deadlocked run.
        seed: scheduler seed of the run (None when not applicable).
    """

    __slots__ = (
        "thread",
        "address",
        "flags",
        "icount",
        "value",
        "final_icounts",
        "name",
        "hung",
        "seed",
        "_views",
        "_backing",
    )

    def __init__(
        self,
        final_icounts: Sequence[int] = (),
        name: str = "trace",
        hung: bool = False,
        seed: Optional[int] = None,
    ):
        self.thread = array("H")
        self.address = array("Q")
        self.flags = array("B")
        self.icount = array("Q")
        self.value = array("q")
        self.final_icounts: List[int] = list(final_icounts)
        self.name = name
        self.hung = hung
        self.seed = seed
        self._views: dict = {}
        self._backing = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_buffer(
        cls,
        columns,
        final_icounts: Sequence[int],
        name: str = "trace",
        hung: bool = False,
        seed: Optional[int] = None,
        backing=None,
    ) -> "PackedTrace":
        """A *buffer-backed* trace: columns are typed views, not arrays.

        ``columns`` are the five typed views (``memoryview.cast`` over a
        mapped or shared buffer) in canonical column order; no bytes are
        copied.  ``backing`` is whatever owns the underlying buffer (an
        ``mmap``, a ``SharedMemory`` segment) and is pinned for the
        trace's lifetime so the views can never dangle.

        Buffer-backed traces are read-only recordings: appending raises
        (the views have no ``append``), while every analysis path --
        numpy kernels via ``frombuffer``, the scalar interpreters via
        the lazily cached :meth:`hot_columns` lists -- works unchanged.
        List materialization happens only when a scalar/no-numpy path
        actually asks for it, never at construction.
        """
        packed = cls(final_icounts, name=name, hung=hung, seed=seed)
        (packed.thread, packed.address, packed.flags, packed.icount,
         packed.value) = columns
        packed._backing = backing
        return packed

    @classmethod
    def from_events(
        cls,
        events: Sequence[MemoryEvent],
        final_icounts: Sequence[int],
        name: str = "trace",
        hung: bool = False,
        seed: Optional[int] = None,
    ) -> "PackedTrace":
        """Pack an existing event sequence into columns."""
        packed = cls(final_icounts, name=name, hung=hung, seed=seed)
        ta = packed.thread.append
        aa = packed.address.append
        fa = packed.flags.append
        ia = packed.icount.append
        va = packed.value.append
        for event in events:
            ta(event.thread)
            aa(event.address)
            fa(
                (FLAG_WRITE if event.is_write else 0)
                | (FLAG_SYNC if event.is_sync else 0)
            )
            ia(event.icount)
            va(event.value)
        return packed

    @classmethod
    def from_trace(cls, trace) -> "PackedTrace":
        """Pack a :class:`~repro.trace.stream.Trace`.

        A packed-backed trace returns its existing columns (no copy); an
        object-backed trace is packed column by column.
        """
        backing = getattr(trace, "packed", None)
        if backing is not None:
            return backing
        return cls.from_events(
            trace.events,
            trace.final_icounts,
            name=trace.name,
            hung=trace.hung,
            seed=trace.seed,
        )

    # -- views -----------------------------------------------------------------

    @property
    def n_threads(self) -> int:
        return len(self.final_icounts)

    @property
    def zero_copy(self) -> bool:
        """True when the columns are views over an external buffer
        (mmap-backed store entry, shared-memory segment) rather than
        owned ``array.array`` storage."""
        return not isinstance(self.thread, array)

    def __len__(self) -> int:
        return len(self.thread)

    def append(
        self, thread: int, address: int, flags: int, icount: int,
        value: int,
    ) -> None:
        """Append one event (hot callers bind the column appends instead)."""
        self.thread.append(thread)
        self.address.append(address)
        self.flags.append(flags)
        self.icount.append(icount)
        self.value.append(value)

    def columns(self):
        """The five columns in canonical order (thread, address, flags,
        icount, value)."""
        return (self.thread, self.address, self.flags, self.icount,
                self.value)

    def hot_columns(self):
        """``(thread, address, flags, icount)`` as plain lists.

        ``array.array`` iteration boxes every item on the fly; a list
        holds pre-boxed ints, which is measurably faster for the
        detectors' per-event loops.  The conversion happens once per
        trace and is cached (re-derived if the trace has since grown),
        so N analysis passes over one recording pay for it once.
        """
        n = len(self.thread)
        cached = self._views.get("hot")
        if cached is not None and cached[0] == n:
            return cached[1]
        lists = (
            self.thread.tolist(),
            self.address.tolist(),
            self.flags.tolist(),
            self.icount.tolist(),
        )
        self._views["hot"] = (n, lists)
        return lists

    def geometry_columns(self, line_mask: int, set_shift: int,
                         set_mask: int):
        """Per-event ``(line, word, word_bit, set_index)`` lists.

        These are pure functions of the address column and the cache
        geometry, so they are derived once (vectorized when numpy is
        available) and cached per geometry key; every configuration in
        a sweep that shares the geometry -- e.g. the whole D axis --
        reuses them instead of recomputing four shift/mask ops per
        event per pass.

        The cache key is the *normalized* geometry triple under a
        ``"geom"`` tag: masks are reduced to their unsigned-64 value, so
        a caller passing ``~(line_size - 1)`` as a negative Python int
        and one passing the two's-complement u64 share one entry, and
        tagged keys cannot collide with the trace's other cached views
        (hot columns, analysis plans, residuals) no matter what
        geometry values a config produces.
        """
        n = len(self.thread)
        key = ("geom", line_mask & _U64, set_shift, set_mask & _U64)
        cached = self._views.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        offset_mask = ~line_mask & _U64  # line_size - 1
        if _np is not None and _kernels.kernels_enabled() \
                and offset_mask >> 2 < 64:
            addr = _np.frombuffer(self.address, dtype=_np.uint64)
            line = addr & _np.uint64(line_mask & _U64)
            word = (addr & _np.uint64(offset_mask)) >> _np.uint64(2)
            derived = (
                line.tolist(),
                word.tolist(),
                (_np.uint64(1) << word).tolist(),
                ((line >> _np.uint64(set_shift))
                 & _np.uint64(set_mask & _U64)).tolist(),
            )
        else:
            addresses = self.address.tolist()
            lines = [a & line_mask for a in addresses]
            words = [(a & offset_mask) >> 2 for a in addresses]
            derived = (
                lines,
                words,
                [1 << w for w in words],
                [(l >> set_shift) & set_mask for l in lines],
            )
        self._views[key] = (n, derived)
        return derived

    # -- analysis plans (config-independent numpy pre-passes) -----------------
    #
    # All three products below are pure functions of the recorded
    # columns (plus, where noted, a line mask), so they are computed at
    # most once per trace and shared by every detector configuration of
    # a sweep.  Caches hold only kernel-built (numpy) results: when the
    # kernels are disabled -- numpy absent or ``REPRO_NO_NUMPY=1`` --
    # every accessor returns ``None`` *without* touching the cache, so
    # flipping the escape hatch mid-process can never serve a stale
    # plan in place of the fallback path (or vice versa).

    def segment_plan(self, line_mask: int):
        """The cached :class:`~repro.trace.kernels.SegmentPlan` for
        ``line_mask``, or ``None`` when the kernels are unavailable (or
        the geometry does not fit 64-bit word masks)."""
        if not _kernels.kernels_enabled():
            return None
        key = ("plan", line_mask & _U64)
        n = len(self.thread)
        cached = self._views.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        plan = _kernels.build_segment_plan(self, line_mask)
        self._views[key] = (n, plan)
        return plan

    def word_residual(self):
        """The cached word-granularity residual view (sync events plus
        data accesses to words touched by more than one thread), or
        ``None`` when the kernels are unavailable."""
        if not _kernels.kernels_enabled():
            return None
        key = ("wordres",)
        n = len(self.thread)
        cached = self._views.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        residual = _kernels.build_word_residual(self)
        self._views[key] = (n, residual)
        return residual

    def line_residual(self, line_mask: int):
        """The cached line-granularity residual view for ``line_mask``
        (sync events plus data accesses to lines touched by more than
        one thread), or ``None`` when the kernels are unavailable.

        Sound only for detectors whose metadata capacity is unlimited;
        see :func:`repro.trace.kernels.build_line_residual`.
        """
        if not _kernels.kernels_enabled():
            return None
        key = ("lineres", line_mask & _U64)
        n = len(self.thread)
        cached = self._views.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        residual = _kernels.build_line_residual(self, line_mask)
        self._views[key] = (n, residual)
        return residual

    # -- batch seeding ---------------------------------------------------------
    #
    # The batched analysis tier (:mod:`repro.resilience.guard`) builds
    # the plan products for *k* same-geometry traces in one arena pass
    # and seeds them here, so the per-trace accessors above become cache
    # hits.  Seeders own the same key formats as their accessors, follow
    # the same kernels-enabled gate (a seeded plan must never shadow the
    # fallback path), and never clobber an already-derived product.

    def seed_segment_plan(self, line_mask: int, plan) -> None:
        """Pre-populate :meth:`segment_plan`'s cache for ``line_mask``."""
        if not _kernels.kernels_enabled():
            return
        key = ("plan", line_mask & _U64)
        n = len(self.thread)
        cached = self._views.get(key)
        if cached is not None and cached[0] == n:
            return
        self._views[key] = (n, plan)

    def seed_word_residual(self, residual) -> None:
        """Pre-populate :meth:`word_residual`'s cache."""
        if not _kernels.kernels_enabled():
            return
        n = len(self.thread)
        cached = self._views.get(("wordres",))
        if cached is not None and cached[0] == n:
            return
        self._views[("wordres",)] = (n, residual)

    def seed_line_residual(self, line_mask: int, residual) -> None:
        """Pre-populate :meth:`line_residual`'s cache for ``line_mask``."""
        if not _kernels.kernels_enabled():
            return
        key = ("lineres", line_mask & _U64)
        n = len(self.thread)
        cached = self._views.get(key)
        if cached is not None and cached[0] == n:
            return
        self._views[key] = (n, residual)

    def derived(self, key, build):
        """Generic per-trace cache for derived analysis products.

        Higher layers (e.g. the CORD detector's coherence replay plan,
        :mod:`repro.cord.coherence`) cache trace-derived, config-shared
        structures here without :mod:`repro.trace` having to know their
        types.  ``key`` must be a hashable tuple whose first element
        tags the product (tagged keys cannot collide with the built-in
        views); ``build`` is invoked once and the result is memoized
        until the trace grows.
        """
        n = len(self.thread)
        cached = self._views.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        value = build()
        self._views[key] = (n, value)
        return value

    def derived_cached(self, key):
        """The cached :meth:`derived` product for ``key``, or ``None``.

        A lookup that never builds: callers use it to decide whether a
        plan is already paid for (e.g. the CORD kernel dispatch falls
        back to the scalar loop when a coherence plan is neither cached
        nor going to be shared by another configuration).
        """
        cached = self._views.get(key)
        if cached is not None and cached[0] == len(self.thread):
            return cached[1]
        return None

    def iter_events(self) -> Iterator[MemoryEvent]:
        """Lazily yield event objects (for per-event detector paths)."""
        read, write = AccessMode.READ, AccessMode.WRITE
        data, sync = AccessClass.DATA, AccessClass.SYNC
        for index, (thread, address, flags, icount, value) in enumerate(
            zip(self.thread, self.address, self.flags, self.icount,
                self.value)
        ):
            yield MemoryEvent(
                index,
                thread,
                address,
                write if flags & FLAG_WRITE else read,
                sync if flags & FLAG_SYNC else data,
                icount,
                value,
            )

    def materialize_events(self) -> List[MemoryEvent]:
        """Build the full event-object list (diagnostics/replay checks)."""
        return list(self.iter_events())

    def to_trace(self):
        """A :class:`~repro.trace.stream.Trace` view over these columns.

        The returned trace materializes its event list lazily, on first
        ``.events`` access.
        """
        from repro.trace.stream import Trace

        return Trace.from_packed(self)

    def columns_equal(self, other: "PackedTrace") -> bool:
        """Exact column-level equality (used by equivalence tests)."""
        return (
            self.thread == other.thread
            and self.address == other.address
            and self.flags == other.flags
            and self.icount == other.icount
            and self.value == other.value
            and self.final_icounts == other.final_icounts
            and self.name == other.name
            and self.hung == other.hung
            and self.seed == other.seed
        )

    def __repr__(self):
        return "PackedTrace(name=%r, events=%d, threads=%d%s)" % (
            self.name,
            len(self.thread),
            self.n_threads,
            ", HUNG" if self.hung else "",
        )
