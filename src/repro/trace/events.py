"""Memory-access events.

One :class:`MemoryEvent` is recorded for every shared-memory access the
engine performs on behalf of a program (data reads/writes, and the labeled
synchronization accesses that lock/unlock/flag primitives lower to).
Compute ops advance the instruction count but emit no event.

Events are the unit detectors operate on, so they are kept small
(``__slots__``) -- a campaign processes millions of them.
"""

from __future__ import annotations

from repro.common.types import AccessClass, AccessMode


class MemoryEvent:
    """One shared-memory access in a recorded execution.

    Attributes:
        index: position in the global interleaving (0-based).
        thread: issuing thread id.
        address: byte address of the accessed word.
        mode: :class:`AccessMode` (READ or WRITE).
        klass: :class:`AccessClass` (DATA or SYNC).
        icount: the issuing thread's instruction count *before* this
            instruction retires (i.e. the per-thread index of this op).
        value: the value read or written (diagnostics and replay checks).
        is_write / is_sync: mode/class predicates, precomputed at
            construction.  Detectors consult them several times per event
            (millions of events per campaign), so they are plain slot
            attributes rather than properties -- events are immutable by
            convention, never mutate ``mode``/``klass`` after creation.
    """

    __slots__ = (
        "index",
        "thread",
        "address",
        "mode",
        "klass",
        "icount",
        "value",
        "is_write",
        "is_sync",
    )

    def __init__(self, index, thread, address, mode, klass, icount, value=0):
        self.index = index
        self.thread = thread
        self.address = address
        self.mode = mode
        self.klass = klass
        self.icount = icount
        self.value = value
        self.is_write = mode is AccessMode.WRITE
        self.is_sync = klass is AccessClass.SYNC

    def conflicts_with(self, other: "MemoryEvent") -> bool:
        """Shasha/Snir conflict: different threads, same word, >= 1 write."""
        return (
            self.thread != other.thread
            and self.address == other.address
            and (self.is_write or other.is_write)
        )

    def key(self):
        """Stable identity tuple (used by replay equivalence checks)."""
        return (self.thread, self.icount, self.address,
                int(self.mode), int(self.klass))

    def __repr__(self):
        return "MemoryEvent(#%d t%d %s %s %#x ic=%d)" % (
            self.index,
            self.thread,
            "WR" if self.is_write else "RD",
            "SYNC" if self.is_sync else "DATA",
            self.address,
            self.icount,
        )
