"""Conflict-order summaries for replay verification.

Deterministic replay is correct when, for every memory word, the replayed
execution orders conflicting accesses the same way the recorded execution
did: the sequence of writes per word matches, and every read observes the
same write it observed during recording.  (Non-conflicting accesses may
legally reorder -- the paper makes exactly this point about concurrent
fragments with equal logical clocks.)

:func:`summarize_conflicts` reduces a trace to that canonical form so two
traces can be compared for replay equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace.stream import Trace

#: Identity of an access independent of the global interleaving:
#: (thread id, per-thread instruction count).
AccessId = Tuple[int, int]


@dataclass
class ConflictSummary:
    """Canonical conflict ordering of one execution.

    Attributes:
        write_order: per word, the sequence of write access ids.
        reads_from: per read access id, the id of the write it observed
            (None when it read the initial value).
    """

    write_order: Dict[int, List[AccessId]] = field(default_factory=dict)
    reads_from: Dict[AccessId, Optional[AccessId]] = field(
        default_factory=dict
    )

    def equivalent_to(self, other: "ConflictSummary") -> bool:
        """True when both executions ordered all conflicts identically."""
        return (
            self.write_order == other.write_order
            and self.reads_from == other.reads_from
        )

    def first_difference(self, other: "ConflictSummary") -> Optional[str]:
        """Human-readable description of the first divergence, if any."""
        for address in sorted(set(self.write_order) | set(other.write_order)):
            mine = self.write_order.get(address, [])
            theirs = other.write_order.get(address, [])
            if mine != theirs:
                return "write order differs at %#x: %s vs %s" % (
                    address,
                    mine[:6],
                    theirs[:6],
                )
        for access in sorted(set(self.reads_from) | set(other.reads_from)):
            mine_w = self.reads_from.get(access, "absent")
            theirs_w = other.reads_from.get(access, "absent")
            if mine_w != theirs_w:
                return "read %s observes %s vs %s" % (
                    (access,),
                    mine_w,
                    theirs_w,
                )
        return None


def summarize_conflicts(trace: Trace) -> ConflictSummary:
    """Reduce ``trace`` to its conflict ordering."""
    summary = ConflictSummary()
    last_write: Dict[int, AccessId] = {}
    for event in trace.events:
        access_id: AccessId = (event.thread, event.icount)
        if event.is_write:
            summary.write_order.setdefault(event.address, []).append(
                access_id
            )
            last_write[event.address] = access_id
        else:
            summary.reads_from[access_id] = last_write.get(event.address)
    return summary
