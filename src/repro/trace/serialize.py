"""Binary trace serialization.

Campaign traces are expensive to produce (a functional simulation) and
cheap to re-analyze (a detector pass), so persisting them pays off when
sweeping detector configurations offline.  The format is a small custom
binary layout with a versioned magic; it is not meant for interchange,
only for faithful round-trips within this library (asserted by unit and
property tests).

Version 2 (current, written by :func:`encode_trace`) is *columnar*: after
the header, each event column is dumped as one contiguous little-endian
block, so encoding is five ``array.tobytes`` calls and decoding five
``array.frombytes`` calls -- no per-event ``struct`` work at all::

    header:   magic 'CORDTRC2' | u16 n_threads | u8 hung | i64 seed
              u32 n_events | n_threads * u64 final_icounts | u16 name_len
              | name utf-8
    columns:  thread u16[n] | address u64[n] | flags u8[n]
              | icount u64[n] | value i64[n]
              (flags bit0 = write, bit1 = sync)

Version 1 (row-major, 23 bytes per event: ``u16 thread | u64 address |
u8 flags | u32 icount | i64 value`` after the same header shape) is still
decoded for old files, in bulk via ``struct.iter_unpack``.

Robustness contract: decoding arbitrary bytes either returns a faithful
trace or raises :class:`~repro.common.errors.LogFormatError` -- never a
raw ``struct.error``/``UnicodeDecodeError`` and never a huge allocation
driven by a corrupt length field (the payload-length check runs before
any column is materialized).  The codec itself carries no checksum, so a
bit flip *inside* a column payload of the right length is undetectable
here; the on-disk store (:mod:`repro.trace.store`) layers a SHA-256
checksummed frame on top for exactly that case.

See ``docs/trace-format.md`` for the full layout and the sweep-cache key
scheme built on top of it.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Union

from repro.common.errors import LogFormatError
from repro.trace.packed import COLUMN_TYPECODES, PackedTrace
from repro.trace.stream import Trace

_MAGIC_V1 = b"CORDTRC1"
_MAGIC_V2 = b"CORDTRC2"
_HEADER = struct.Struct("<HBqI")
_EVENT_V1 = struct.Struct("<HQBIq")
_NO_SEED = -(1 << 62)
_LITTLE = sys.byteorder == "little"


def _encode_header(magic: bytes, packed: PackedTrace) -> bytearray:
    name_bytes = packed.name.encode("utf-8")
    out = bytearray(magic)
    out += _HEADER.pack(
        packed.n_threads,
        1 if packed.hung else 0,
        _NO_SEED if packed.seed is None else packed.seed,
        len(packed),
    )
    out += struct.pack(
        "<%dQ" % packed.n_threads, *packed.final_icounts
    )
    out += struct.pack("<H", len(name_bytes))
    out += name_bytes
    return out


def _decode_header(data, magic_len: int):
    """Decode the shared header, validating as it goes.

    Any way a truncated or bit-flipped buffer can break the header --
    cut-off fixed fields, an icount table or name extending past the end
    of the data, a name that is not UTF-8 -- raises
    :class:`LogFormatError` with a reason, never ``struct.error`` or
    ``UnicodeDecodeError`` (and never an attempt to decode garbage).
    """
    offset = magic_len
    try:
        n_threads, hung, seed, n_events = _HEADER.unpack_from(
            data, offset
        )
        offset += _HEADER.size
        final_icounts = list(
            struct.unpack_from("<%dQ" % n_threads, data, offset)
        )
        offset += 8 * n_threads
        (name_len,) = struct.unpack_from("<H", data, offset)
        offset += 2
    except struct.error as exc:
        raise LogFormatError(
            "truncated trace header: %s" % exc
        ) from exc
    if offset + name_len > len(data):
        raise LogFormatError(
            "trace name extends past the end of the data "
            "(need %d bytes at offset %d of %d)"
            % (name_len, offset, len(data))
        )
    try:
        name = bytes(data[offset:offset + name_len]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise LogFormatError(
            "trace name is not valid UTF-8: %s" % exc
        ) from exc
    offset += name_len
    return offset, n_events, final_icounts, name, bool(hung), (
        None if seed == _NO_SEED else seed
    )


def encode_packed_trace(packed: PackedTrace) -> bytes:
    """Serialize a packed trace (format v2, one block per column)."""
    out = _encode_header(_MAGIC_V2, packed)
    for column in packed.columns():
        if not _LITTLE:
            column = array(column.typecode, column)
            column.byteswap()
        out += column.tobytes()
    return bytes(out)


def decode_packed_trace(
    data: Union[bytes, bytearray, memoryview]
) -> PackedTrace:
    """Deserialize either format version into columnar form."""
    magic = bytes(data[: len(_MAGIC_V2)])
    if magic == _MAGIC_V2:
        return _decode_v2(data)
    if magic == _MAGIC_V1:
        return _decode_v1(data)
    raise LogFormatError("not a CORD trace (bad magic)")


def _decode_v2(data) -> PackedTrace:
    offset, n_events, final_icounts, name, hung, seed = _decode_header(
        data, len(_MAGIC_V2)
    )
    packed = PackedTrace(final_icounts, name=name, hung=hung, seed=seed)
    expected = offset + n_events * sum(
        array(code).itemsize for _name, code in COLUMN_TYPECODES
    )
    if len(data) != expected:
        raise LogFormatError(
            "trace payload is %d bytes, expected %d"
            % (len(data), expected)
        )
    view = memoryview(data)
    for column in packed.columns():
        span = n_events * column.itemsize
        column.frombytes(view[offset:offset + span])
        if not _LITTLE:
            column.byteswap()
        offset += span
    return packed


def _decode_v1(data) -> PackedTrace:
    offset, n_events, final_icounts, name, hung, seed = _decode_header(
        data, len(_MAGIC_V1)
    )
    expected = offset + n_events * _EVENT_V1.size
    if len(data) != expected:
        raise LogFormatError(
            "trace payload is %d bytes, expected %d"
            % (len(data), expected)
        )
    packed = PackedTrace(final_icounts, name=name, hung=hung, seed=seed)
    ta = packed.thread.append
    aa = packed.address.append
    fa = packed.flags.append
    ia = packed.icount.append
    va = packed.value.append
    for thread, address, flags, icount, value in _EVENT_V1.iter_unpack(
        bytes(data[offset:])
    ):
        ta(thread)
        aa(address)
        fa(flags)
        ia(icount)
        va(value)
    return packed


def encode_trace(trace: Union[Trace, PackedTrace]) -> bytes:
    """Serialize a trace (object- or packed-backed) to bytes (v2)."""
    if isinstance(trace, PackedTrace):
        return encode_packed_trace(trace)
    return encode_packed_trace(PackedTrace.from_trace(trace))


def decode_trace(data: Union[bytes, bytearray]) -> Trace:
    """Deserialize a trace produced by :func:`encode_trace` (any version).

    The returned trace is packed-backed: its event-object list
    materializes lazily on first ``.events`` access.
    """
    return Trace.from_packed(decode_packed_trace(data))


def _encode_trace_v1(trace: Trace) -> bytes:
    """Legacy row-major encoder (kept for migration tests only)."""
    packed = PackedTrace.from_trace(trace)
    out = _encode_header(_MAGIC_V1, packed)
    pack = _EVENT_V1.pack
    for thread, address, flags, icount, value in zip(*packed.columns()):
        out += pack(thread, address, flags, icount, value)
    return bytes(out)
