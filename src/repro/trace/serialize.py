"""Binary trace serialization.

Campaign traces are expensive to produce (a functional simulation) and
cheap to re-analyze (a detector pass), so persisting them pays off when
sweeping detector configurations offline.  The format is a small custom
binary layout with a versioned magic; it is not meant for interchange,
only for faithful round-trips within this library (asserted by unit and
property tests).

Version 3 (current, written by :func:`encode_trace`) is *column-aligned*:
after the header, a small index declares where each fixed-dtype column
section starts, and every section is padded to a 64-byte boundary so a
consumer can construct typed views (``memoryview.cast`` /
``numpy.frombuffer``) directly over the encoded buffer -- the zero-copy
path :func:`view_packed_trace` does exactly that, with no per-column
copy at all::

    header:   magic 'CORDTRC3' | u16 n_threads | u8 hung | i64 seed
              u32 n_events | n_threads * u64 final_icounts | u16 name_len
              | name utf-8
    index:    u8 n_columns (5) | u8 align_log2 (6 -> 64-byte alignment)
              | n_columns * u64 column offsets (from the start of the
              blob; strictly increasing, each aligned)
    sections: zero padding to each declared offset, then the column as
              one contiguous little-endian block:
              thread u16[n] | address u64[n] | flags u8[n]
              | icount u64[n] | value i64[n]
              (flags bit0 = write, bit1 = sync)

The index is validated by recomputation: the declared offsets must equal
the offsets the declared alignment implies, and the buffer must end
exactly at the last section's end, so any bit flip in the index -- and
any truncation anywhere -- raises instead of mis-slicing columns.

Version 2 (same header, columns packed back to back with no index or
padding -- encoding was five ``array.tobytes`` calls) and version 1
(row-major, 23 bytes per event: ``u16 thread | u64 address | u8 flags |
u32 icount | i64 value`` after the same header shape) are still decoded
for old files.

Robustness contract: decoding arbitrary bytes either returns a faithful
trace or raises :class:`~repro.common.errors.LogFormatError` -- never a
raw ``struct.error``/``UnicodeDecodeError`` and never a huge allocation
driven by a corrupt length field (the payload-length check runs before
any column is materialized).  The codec itself carries no checksum, so a
bit flip *inside* a column payload of the right length is undetectable
here; the on-disk store (:mod:`repro.trace.store`) layers a SHA-256
checksummed frame on top for exactly that case.

See ``docs/trace-format.md`` for the full layout and the sweep-cache key
scheme built on top of it.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Union

from repro.common.errors import LogFormatError
from repro.trace.packed import COLUMN_TYPECODES, PackedTrace
from repro.trace.stream import Trace

_MAGIC_V1 = b"CORDTRC1"
_MAGIC_V2 = b"CORDTRC2"
_MAGIC_V3 = b"CORDTRC3"
_HEADER = struct.Struct("<HBqI")
_EVENT_V1 = struct.Struct("<HQBIq")
_NO_SEED = -(1 << 62)
_LITTLE = sys.byteorder == "little"

#: v3 section alignment: 64 bytes (a cache line) relative to the start
#: of the blob, so columns stay aligned for typed views no matter which
#: aligned container (store entry, shared-memory segment) holds them.
V3_ALIGN = 64
_V3_INDEX = struct.Struct("<BB")
_V3_OFFSETS = struct.Struct("<%dQ" % len(COLUMN_TYPECODES))
_ITEMSIZES = tuple(
    array(code).itemsize for _name, code in COLUMN_TYPECODES
)


def _v3_layout(header_len: int, n_events: int, align: int):
    """Column offsets (and total length) for a v3 blob.

    A pure function of the header length, the event count, and the
    alignment -- both the encoder and the decoders derive the layout
    from it, so the on-disk index can be *validated* instead of trusted.
    """
    offsets = []
    position = header_len
    for itemsize in _ITEMSIZES:
        position = -(-position // align) * align
        offsets.append(position)
        position += n_events * itemsize
    return offsets, position


def _column_le_bytes(column, typecode: str) -> bytes:
    """One column as little-endian bytes (columns may be ``array.array``
    or, for buffer-backed traces, read-only ``memoryview`` casts)."""
    if _LITTLE:
        return column.tobytes()
    swapped = array(typecode, column)
    swapped.byteswap()
    return swapped.tobytes()


def _encode_header(magic: bytes, packed: PackedTrace) -> bytearray:
    name_bytes = packed.name.encode("utf-8")
    out = bytearray(magic)
    out += _HEADER.pack(
        packed.n_threads,
        1 if packed.hung else 0,
        _NO_SEED if packed.seed is None else packed.seed,
        len(packed),
    )
    out += struct.pack(
        "<%dQ" % packed.n_threads, *packed.final_icounts
    )
    out += struct.pack("<H", len(name_bytes))
    out += name_bytes
    return out


def _decode_header(data, magic_len: int):
    """Decode the shared header, validating as it goes.

    Any way a truncated or bit-flipped buffer can break the header --
    cut-off fixed fields, an icount table or name extending past the end
    of the data, a name that is not UTF-8 -- raises
    :class:`LogFormatError` with a reason, never ``struct.error`` or
    ``UnicodeDecodeError`` (and never an attempt to decode garbage).
    """
    offset = magic_len
    try:
        n_threads, hung, seed, n_events = _HEADER.unpack_from(
            data, offset
        )
        offset += _HEADER.size
        final_icounts = list(
            struct.unpack_from("<%dQ" % n_threads, data, offset)
        )
        offset += 8 * n_threads
        (name_len,) = struct.unpack_from("<H", data, offset)
        offset += 2
    except struct.error as exc:
        raise LogFormatError(
            "truncated trace header: %s" % exc
        ) from exc
    if offset + name_len > len(data):
        raise LogFormatError(
            "trace name extends past the end of the data "
            "(need %d bytes at offset %d of %d)"
            % (name_len, offset, len(data))
        )
    try:
        name = bytes(data[offset:offset + name_len]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise LogFormatError(
            "trace name is not valid UTF-8: %s" % exc
        ) from exc
    offset += name_len
    return offset, n_events, final_icounts, name, bool(hung), (
        None if seed == _NO_SEED else seed
    )


def encode_packed_trace(packed: PackedTrace) -> bytes:
    """Serialize a packed trace (format v3, aligned column sections)."""
    out = _encode_header(_MAGIC_V3, packed)
    out += _V3_INDEX.pack(
        len(COLUMN_TYPECODES), V3_ALIGN.bit_length() - 1
    )
    header_len = len(out) + _V3_OFFSETS.size
    offsets, _total = _v3_layout(header_len, len(packed), V3_ALIGN)
    out += _V3_OFFSETS.pack(*offsets)
    for column, offset, (_name, code) in zip(
        packed.columns(), offsets, COLUMN_TYPECODES
    ):
        out += b"\x00" * (offset - len(out))
        out += _column_le_bytes(column, code)
    return bytes(out)


def encode_packed_trace_v2(packed: PackedTrace) -> bytes:
    """Serialize in the legacy v2 layout (migration tests, old tools)."""
    out = _encode_header(_MAGIC_V2, packed)
    for column, (_name, code) in zip(packed.columns(), COLUMN_TYPECODES):
        out += _column_le_bytes(column, code)
    return bytes(out)


def decode_packed_trace(
    data: Union[bytes, bytearray, memoryview]
) -> PackedTrace:
    """Deserialize any format version into (owned) columnar form."""
    magic = bytes(data[: len(_MAGIC_V3)])
    if magic == _MAGIC_V3:
        return _decode_v3(data)
    if magic == _MAGIC_V2:
        return _decode_v2(data)
    if magic == _MAGIC_V1:
        return _decode_v1(data)
    raise LogFormatError("not a CORD trace (bad magic)")


def _decode_v3_geometry(data):
    """Validate a v3 buffer's header + index; return the slicing recipe.

    Shared by the eager decoder and the zero-copy view so both enforce
    the same contract: the declared index must match the recomputed
    layout and the buffer must end exactly at the last section's end.
    """
    offset, n_events, final_icounts, name, hung, seed = _decode_header(
        data, len(_MAGIC_V3)
    )
    try:
        n_columns, align_log2 = _V3_INDEX.unpack_from(data, offset)
        declared = _V3_OFFSETS.unpack_from(
            data, offset + _V3_INDEX.size
        )
    except struct.error as exc:
        raise LogFormatError(
            "truncated v3 column index: %s" % exc
        ) from exc
    if n_columns != len(COLUMN_TYPECODES):
        raise LogFormatError(
            "v3 trace declares %d columns, expected %d"
            % (n_columns, len(COLUMN_TYPECODES))
        )
    if align_log2 > 12:
        raise LogFormatError(
            "v3 alignment 2**%d is implausible" % align_log2
        )
    header_len = offset + _V3_INDEX.size + _V3_OFFSETS.size
    offsets, total = _v3_layout(header_len, n_events, 1 << align_log2)
    if list(declared) != offsets:
        raise LogFormatError(
            "v3 column index %r does not match the layout %r its "
            "header implies" % (list(declared), offsets)
        )
    if len(data) != total:
        raise LogFormatError(
            "trace payload is %d bytes, expected %d"
            % (len(data), total)
        )
    return offsets, n_events, final_icounts, name, hung, seed


def _decode_v3(data) -> PackedTrace:
    offsets, n_events, final_icounts, name, hung, seed = (
        _decode_v3_geometry(data)
    )
    packed = PackedTrace(final_icounts, name=name, hung=hung, seed=seed)
    view = memoryview(data)
    for column, offset in zip(packed.columns(), offsets):
        span = n_events * column.itemsize
        column.frombytes(view[offset:offset + span])
        if not _LITTLE:
            column.byteswap()
    return packed


def view_packed_trace(
    data: Union[bytes, bytearray, memoryview], backing=None
) -> PackedTrace:
    """A zero-copy :class:`PackedTrace` over a v3 buffer.

    Columns are read-only typed views (``memoryview.cast``) constructed
    directly over ``data`` -- no pickle, no ``array`` materialization,
    no per-column copy -- so N consumers of one mapped buffer (an
    ``mmap``-backed store entry, a ``multiprocessing.shared_memory``
    segment) share one physical copy of the trace.  ``backing`` is any
    object that must stay alive as long as the views do (the mmap, the
    open SharedMemory); the returned trace pins it.

    Only the v3 format can be viewed (v1/v2 sections are unaligned and
    interleaved); on big-endian hosts the little-endian sections cannot
    be aliased either, so both cases fall back to the eager decoder --
    same trace, one copy.  Malformed buffers raise
    :class:`LogFormatError` exactly like the eager path.
    """
    if bytes(data[: len(_MAGIC_V3)]) != _MAGIC_V3 or not _LITTLE:
        return decode_packed_trace(
            data if isinstance(data, (bytes, bytearray)) else bytes(data)
        )
    offsets, n_events, final_icounts, name, hung, seed = (
        _decode_v3_geometry(data)
    )
    view = data if isinstance(data, memoryview) else memoryview(data)
    columns = []
    for offset, (_name, code), itemsize in zip(
        offsets, COLUMN_TYPECODES, _ITEMSIZES
    ):
        span = n_events * itemsize
        columns.append(view[offset:offset + span].cast(code))
    return PackedTrace.from_buffer(
        columns,
        final_icounts,
        name=name,
        hung=hung,
        seed=seed,
        backing=backing if backing is not None else view.obj,
    )


def _decode_v2(data) -> PackedTrace:
    offset, n_events, final_icounts, name, hung, seed = _decode_header(
        data, len(_MAGIC_V2)
    )
    packed = PackedTrace(final_icounts, name=name, hung=hung, seed=seed)
    expected = offset + n_events * sum(
        array(code).itemsize for _name, code in COLUMN_TYPECODES
    )
    if len(data) != expected:
        raise LogFormatError(
            "trace payload is %d bytes, expected %d"
            % (len(data), expected)
        )
    view = memoryview(data)
    for column in packed.columns():
        span = n_events * column.itemsize
        column.frombytes(view[offset:offset + span])
        if not _LITTLE:
            column.byteswap()
        offset += span
    return packed


def _decode_v1(data) -> PackedTrace:
    offset, n_events, final_icounts, name, hung, seed = _decode_header(
        data, len(_MAGIC_V1)
    )
    expected = offset + n_events * _EVENT_V1.size
    if len(data) != expected:
        raise LogFormatError(
            "trace payload is %d bytes, expected %d"
            % (len(data), expected)
        )
    packed = PackedTrace(final_icounts, name=name, hung=hung, seed=seed)
    ta = packed.thread.append
    aa = packed.address.append
    fa = packed.flags.append
    ia = packed.icount.append
    va = packed.value.append
    for thread, address, flags, icount, value in _EVENT_V1.iter_unpack(
        bytes(data[offset:])
    ):
        ta(thread)
        aa(address)
        fa(flags)
        ia(icount)
        va(value)
    return packed


def encode_trace(trace: Union[Trace, PackedTrace]) -> bytes:
    """Serialize a trace (object- or packed-backed) to bytes (v3)."""
    if isinstance(trace, PackedTrace):
        return encode_packed_trace(trace)
    return encode_packed_trace(PackedTrace.from_trace(trace))


def decode_trace(data: Union[bytes, bytearray]) -> Trace:
    """Deserialize a trace produced by :func:`encode_trace` (any version).

    The returned trace is packed-backed: its event-object list
    materializes lazily on first ``.events`` access.
    """
    return Trace.from_packed(decode_packed_trace(data))


def _encode_trace_v1(trace: Trace) -> bytes:
    """Legacy row-major encoder (kept for migration tests only)."""
    packed = PackedTrace.from_trace(trace)
    out = _encode_header(_MAGIC_V1, packed)
    pack = _EVENT_V1.pack
    for thread, address, flags, icount, value in zip(*packed.columns()):
        out += pack(thread, address, flags, icount, value)
    return bytes(out)
