"""Binary trace serialization.

Campaign traces are expensive to produce (a functional simulation) and
cheap to re-analyze (a detector pass), so persisting them pays off when
sweeping detector configurations offline.  The format is a small custom
binary layout -- 23 bytes per event -- with a versioned header; it is not
meant for interchange, only for faithful round-trips within this library
(asserted by unit and property tests).

Layout::

    header:  magic 'CORDTRC1' | u16 n_threads | u8 hung | i64 seed
             u32 n_events | n_threads * u64 final_icounts | u16 name_len
             | name utf-8
    events:  u16 thread | u64 address | u8 flags | u32 icount | i64 value
             (flags bit0 = write, bit1 = sync)
"""

from __future__ import annotations

import struct
from typing import Union

from repro.common.errors import LogFormatError
from repro.common.types import AccessClass, AccessMode
from repro.trace.events import MemoryEvent
from repro.trace.stream import Trace

_MAGIC = b"CORDTRC1"
_HEADER = struct.Struct("<HBqI")
_EVENT = struct.Struct("<HQBIq")
_NO_SEED = -(1 << 62)


def encode_trace(trace: Trace) -> bytes:
    """Serialize a trace to bytes."""
    name_bytes = trace.name.encode("utf-8")
    parts = [
        _MAGIC,
        _HEADER.pack(
            trace.n_threads,
            1 if trace.hung else 0,
            _NO_SEED if trace.seed is None else trace.seed,
            len(trace.events),
        ),
        struct.pack(
            "<%dQ" % trace.n_threads, *trace.final_icounts
        ),
        struct.pack("<H", len(name_bytes)),
        name_bytes,
    ]
    for event in trace.events:
        flags = (1 if event.is_write else 0) | (
            2 if event.is_sync else 0
        )
        parts.append(
            _EVENT.pack(
                event.thread,
                event.address,
                flags,
                event.icount,
                event.value,
            )
        )
    return b"".join(parts)


def decode_trace(data: Union[bytes, bytearray]) -> Trace:
    """Deserialize a trace produced by :func:`encode_trace`."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise LogFormatError("not a CORD trace (bad magic)")
    offset = len(_MAGIC)
    n_threads, hung, seed, n_events = _HEADER.unpack_from(data, offset)
    offset += _HEADER.size
    final_icounts = list(
        struct.unpack_from("<%dQ" % n_threads, data, offset)
    )
    offset += 8 * n_threads
    (name_len,) = struct.unpack_from("<H", data, offset)
    offset += 2
    name = bytes(data[offset:offset + name_len]).decode("utf-8")
    offset += name_len

    expected = offset + n_events * _EVENT.size
    if len(data) != expected:
        raise LogFormatError(
            "trace payload is %d bytes, expected %d"
            % (len(data), expected)
        )

    events = []
    for index in range(n_events):
        thread, address, flags, icount, value = _EVENT.unpack_from(
            data, offset
        )
        offset += _EVENT.size
        events.append(
            MemoryEvent(
                index,
                thread,
                address,
                AccessMode.WRITE if flags & 1 else AccessMode.READ,
                AccessClass.SYNC if flags & 2 else AccessClass.DATA,
                icount,
                value,
            )
        )
    return Trace(
        events,
        final_icounts,
        name=name,
        hung=bool(hung),
        seed=None if seed == _NO_SEED else seed,
    )
