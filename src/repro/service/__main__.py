"""``cord-serve`` -- the campaign service's command-line face.

``cord-serve serve`` runs a server in the foreground (exit code 0 on a
clean drain, 71 when resumable jobs remain, 2 on bad usage); every
other subcommand is a thin client call printing one canonical-JSON
response line to stdout -- except ``result``, which on success prints
the campaign *report text* so that::

    cord-serve result --socket S <job>

is byte-comparable (``diff``-able) with ``cord-repro inject``'s stdout
for the same spec.  Client subcommands exit 0 on an ``ok`` response, 75
(EX_TEMPFAIL) on a retryable rejection, and 1 on any other error.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from repro.service import protocol
from repro.service.admission import ServiceLimits
from repro.service.client import ServiceClient, ServiceUnavailable

#: Exit status of a retryable rejection (sysexits EX_TEMPFAIL).
RETRY_EXIT_CODE = 75


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cord-serve",
        description="Race-detection campaign service (server and client).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a campaign server")
    serve.add_argument("--root", required=True,
                       help="state root (trace store + job WAL)")
    _add_endpoint_args(serve)
    serve.add_argument("--queue-max", type=int, default=None,
                       help="max active jobs before backpressure")
    serve.add_argument("--tenant-max", type=int, default=None,
                       help="max active jobs per tenant")
    serve.add_argument("--retry-after", type=float, default=None,
                       help="retry_after hint on rejections (seconds)")
    serve.add_argument("--concurrency", type=int, default=None,
                       help="jobs executed concurrently")
    serve.add_argument("--job-workers", type=int, default=None,
                       help="worker processes per job (1 = inline)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-job deadline (seconds)")

    submit = _client_parser(sub, "submit", "submit a campaign job")
    submit.add_argument("workload")
    submit.add_argument("-n", "--runs", type=int, default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--switch-probability", type=float, default=None)
    submit.add_argument("--tenant", default=None)
    submit.add_argument("--deadline", type=float, default=None)

    for name, help_text in (
        ("status", "one job's state snapshot"),
        ("result", "wait for and print a job's report"),
        ("cancel", "cancel a queued or running job"),
    ):
        cmd = _client_parser(sub, name, help_text)
        cmd.add_argument("job")
        if name == "result":
            cmd.add_argument("--stream", action="store_true",
                            help="print per-run event lines as they land")
            cmd.add_argument("--timeout", type=float, default=None,
                            help="give up (exit 75) after this many seconds")

    _client_parser(sub, "health", "server health and stats")
    _client_parser(sub, "drain", "ask the server to drain gracefully")

    sub.add_parser(
        "worker",
        help="run a remote execution agent (see cord-worker --help)",
        add_help=False,
    )
    return parser


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=None,
                        help="unix socket path (default: <root>/service.sock)")
    parser.add_argument("--host", default=None,
                        help="TCP host (instead of a unix socket)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral)")


def _client_parser(sub, name: str, help_text: str):
    parser = sub.add_parser(name, help=help_text)
    _add_endpoint_args(parser)
    parser.add_argument("--timeout-connect", type=float, default=60.0,
                        help="socket timeout per request (seconds)")
    parser.add_argument(
        "--connect-timeout", type=float, default=0.0,
        help="retry refused/reset connects with capped exponential "
             "backoff for up to this many seconds (0 = fail fast)",
    )
    return parser


def _client(args) -> ServiceClient:
    if args.socket is None and args.host is None:
        raise SystemExit(
            "cord-serve: error: need --socket or --host/--port"
        )
    return ServiceClient(
        socket_path=args.socket, host=args.host,
        port=args.port or None, timeout=args.timeout_connect,
        connect_timeout=args.connect_timeout,
    )


def _emit(response: dict) -> int:
    sys.stdout.write(
        protocol.encode_message(response).decode("utf-8")
    )
    if response.get("ok"):
        return 0
    if response.get("error") in protocol.RETRYABLE:
        return RETRY_EXIT_CODE
    return 1


def _cmd_serve(args) -> int:
    from repro.service.server import CampaignServer

    limits = ServiceLimits.from_env(
        queue_max=args.queue_max,
        tenant_max=args.tenant_max,
        retry_after_s=args.retry_after,
    )
    server = CampaignServer(
        root=args.root,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        limits=limits,
        concurrency=args.concurrency,
        job_workers=args.job_workers,
        default_deadline_s=args.deadline,
    )
    return asyncio.run(server.serve())


def _cmd_result(args, client: ServiceClient) -> int:
    if args.stream:
        final: Optional[dict] = None
        for event in client.stream_result(args.job, timeout_s=args.timeout):
            if event.get("final"):
                final = event
                break
            sys.stdout.write(json.dumps(event, sort_keys=True) + "\n")
        response = final or {}
    else:
        response = client.result(args.job, timeout_s=args.timeout)
    if response.get("ok") and isinstance(response.get("report"), str):
        # The payload clients diff against `cord-repro inject`.
        sys.stdout.write(response["report"])
        return 0
    return _emit(response)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "worker":
        # Delegated wholesale: the agent owns its own argparse surface
        # (`cord-serve worker ...` == `cord-worker ...`).
        from repro.service.workers.remote import main as worker_main

        return worker_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    client = _client(args)
    try:
        if args.command == "submit":
            return _emit(client.submit(
                args.workload,
                runs=args.runs,
                seed=args.seed,
                scale=args.scale,
                switch_probability=args.switch_probability,
                tenant=args.tenant,
                deadline_s=args.deadline,
            ))
        if args.command == "status":
            return _emit(client.status(args.job))
        if args.command == "result":
            return _cmd_result(args, client)
        if args.command == "cancel":
            return _emit(client.cancel(args.job))
        if args.command == "health":
            return _emit(client.health())
        if args.command == "drain":
            return _emit(client.drain())
    except ServiceUnavailable as exc:
        print("cord-serve: %s" % exc, file=sys.stderr)
        return RETRY_EXIT_CODE
    raise SystemExit("cord-serve: unknown command %r" % args.command)


if __name__ == "__main__":
    sys.exit(main())
