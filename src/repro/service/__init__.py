"""Race detection as a service: the fault-tolerant campaign server.

The package turns the repo's record-once / analyze-many pipeline into a
long-running, multi-tenant job server:

* :mod:`repro.service.protocol` -- the JSON-lines wire protocol;
* :mod:`repro.service.jobs` -- job model, lifecycle states, and the
  job-state WAL (crash-replayable, ``svc_kill`` chaos hook);
* :mod:`repro.service.admission` -- bounded-queue backpressure,
  per-tenant quotas, round-robin fair scheduling;
* :mod:`repro.service.executor` -- runs one job against the shared
  content-addressed trace store, idempotently and byte-deterministically;
* :mod:`repro.service.server` -- the asyncio front end tying it all
  together (graceful drain, crash resume, cross-tenant dedup stats);
* :mod:`repro.service.client` -- a stdlib sync client;
* ``python -m repro.service`` / ``cord-serve`` -- the CLI.

See ``docs/service.md`` for the protocol and operational contract.
"""

from repro.service.admission import ServiceLimits
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.jobs import CampaignSpec, Job, JobRegistry

__all__ = [
    "CampaignSpec",
    "Job",
    "JobRegistry",
    "ServiceClient",
    "ServiceLimits",
    "ServiceUnavailable",
]
