"""Job model and the job-state write-ahead log of the campaign service.

A *job* is one accepted campaign spec from one tenant.  Its lifecycle is
a straight line through five states::

    accepted -> sharded -> recording -> analyzing -> committed

plus the terminal side-exits ``failed`` and ``cancelled``.  Every
transition is appended to a single service-wide WAL
(``<root>/service/jobs.wal``) using the journal framing from
:mod:`repro.resilience.journal`, with the ``accepted`` record carrying
the full spec -- so a server killed at *any* instant restarts, replays
the WAL, and re-enqueues every non-terminal job from its durable spec.
The division of labor mirrors the sweep journal: the WAL is only the
recovery *index*; the content-addressed trace store is the source of
truth (recorded traces, outcome bundles, committed result documents are
all keyed and atomic), so replaying a transition never changes results,
only skips work.

:class:`ServiceJournal` extends the journal's chaos hooks with the
``svc_kill`` fault (exit code 89 right after a WAL transition is
flushed), which is what lets the recovery test matrix kill the real
server at every transition in turn.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.injection.campaign import CampaignConfig
from repro.resilience import faults
from repro.resilience.journal import Journal, _encode_record, _iter_records
from repro.workloads.base import WorkloadParams

#: WAL layout version, embedded in the ``svc-begin`` record.
SERVICE_WAL_SCHEMA = 1

# -- job states ---------------------------------------------------------------

ACCEPTED = "accepted"
SHARDED = "sharded"
RECORDING = "recording"
ANALYZING = "analyzing"
COMMITTED = "committed"
FAILED = "failed"
CANCELLED = "cancelled"

#: The happy path, in order (the recovery matrix kills at each of these).
LIFECYCLE = (ACCEPTED, SHARDED, RECORDING, ANALYZING, COMMITTED)

#: States a restarted server must resume (re-enqueue and re-execute).
RESUMABLE = frozenset((ACCEPTED, SHARDED, RECORDING, ANALYZING))

#: States that end a job.
TERMINAL = frozenset((COMMITTED, FAILED, CANCELLED))


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that pins one campaign's results (and its store keys).

    Field-for-field the knobs of ``cord-repro inject``: identical
    values here and there must yield byte-identical reports, which is
    the service's core contract.
    """

    workload: str
    runs: int = 10
    seed: int = 2006
    scale: float = 1.0
    switch_probability: float = 0.1

    def digest(self) -> str:
        """Content address of this spec (keys the durable result doc)."""
        ident = repr((
            self.workload, self.runs, self.seed, self.scale,
            self.switch_probability,
        ))
        return hashlib.sha256(ident.encode()).hexdigest()[:16]

    def workload_params(self) -> WorkloadParams:
        return WorkloadParams(scale=self.scale)

    def campaign_config(self) -> CampaignConfig:
        return CampaignConfig(
            n_runs=self.runs,
            base_seed=self.seed,
            switch_probability=self.switch_probability,
        )

    def trace_namespace(self) -> str:
        # Same derivation as experiments.runner.trace_namespace (kept
        # callable here to avoid importing the Suite machinery into the
        # server): the CLI, the sweeps, and the service all hit each
        # other's recordings.
        return "%s/%r" % (self.workload, self.workload_params())

    def to_wire(self) -> Dict:
        return {
            "workload": self.workload,
            "runs": self.runs,
            "seed": self.seed,
            "scale": self.scale,
            "switch_probability": self.switch_probability,
        }

    @classmethod
    def from_wire(cls, fields: Dict) -> "CampaignSpec":
        return cls(
            workload=fields["workload"],
            runs=int(fields["runs"]),
            seed=int(fields["seed"]),
            scale=float(fields["scale"]),
            switch_probability=float(fields["switch_probability"]),
        )


@dataclass
class Job:
    """One accepted campaign job (in-memory view; the WAL is durable)."""

    job_id: str
    tenant: str
    spec: CampaignSpec
    state: str = ACCEPTED
    deadline_s: Optional[float] = None
    error: Optional[str] = None
    detail: str = ""
    resumed: bool = False
    n_runs: int = 0
    sync_instances: int = 0
    runs_done: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    #: Set by the executor thread as runs complete, read by streamers:
    #: ``(run_index, summary dict)`` in emission order.
    run_events: List[Tuple[int, Dict]] = field(default_factory=list)
    report: Optional[str] = None

    def __post_init__(self):
        self.n_runs = self.spec.runs
        self._stop = threading.Event()
        self.stop_reason: Optional[str] = None

    # -- cooperative interruption (cancel / deadline / drain) ----------

    def interrupt(self, reason: str) -> None:
        """Ask the executor to stop at its next safe point."""
        if self.stop_reason is None:
            self.stop_reason = reason
        self._stop.set()

    def should_stop(self) -> bool:
        return self._stop.is_set()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def status_fields(self) -> Dict:
        fields_out = {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "spec": self.spec.to_wire(),
            "runs_done": self.runs_done,
            "n_runs": self.n_runs,
            "resumed": self.resumed,
        }
        if self.sync_instances:
            fields_out["sync_instances"] = self.sync_instances
        if self.error:
            fields_out["error"] = self.error
        if self.detail:
            fields_out["detail"] = self.detail
        return fields_out


class ServiceJournal(Journal):
    """The job WAL's journal handle, with the server kill fault wired in.

    Inherits the framed append path (and the driver-level ``power_cut``
    / ``driver_kill`` / ``sigterm_drain`` hooks -- a server is a driver
    too); adds ``svc_kill``, which hard-exits the server with
    :data:`~repro.resilience.faults.SVC_KILL_EXIT_CODE` right after a
    WAL transition is flushed.  Tick semantics: ``svc_kill:3`` dies at
    exactly the third WAL append of the process.
    """

    def _chaos_flushed(self) -> None:
        super()._chaos_flushed()
        if faults.tick("svc_kill"):
            os._exit(faults.SVC_KILL_EXIT_CODE)


@dataclass
class ReplayedJob:
    """One job's WAL-replayed state (enough to rebuild a :class:`Job`)."""

    job_id: str
    tenant: str = "default"
    spec_fields: Optional[Dict] = None
    state: str = ACCEPTED
    deadline_s: Optional[float] = None
    error: Optional[str] = None
    detail: str = ""
    #: Highest lease epoch seen per task name (``type: "lease"``
    #: records).  Purely observational -- resume re-derives all work
    #: from the store -- but it proves reassignment history survived
    #: the WAL, and the lease tests assert on it.
    lease_epochs: Dict[str, int] = field(default_factory=dict)
    #: Deduped completions recorded for this job (``duplicate`` events).
    duplicate_completions: int = 0


class JobRegistry:
    """The service's job-state WAL: append transitions, replay on boot.

    Thread-safe (executor threads log phase transitions while the event
    loop logs admissions), append-only, torn-tail tolerant: replay stops
    at the first damaged record, which at worst forgets the newest
    transition -- the job then resumes from one state earlier and redoes
    idempotent, store-keyed work.

    Durability: ``accepted`` and every terminal transition fsync
    (losing an *accepted* job would break the no-accepted-job-dropped
    guarantee; losing a mid-flight phase marker costs nothing).
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.path = self.root / "service" / "jobs.wal"
        self.journal = ServiceJournal(self.path)
        self._lock = threading.Lock()
        self._seq = 0
        self._n_records = 0

    # -- replay ---------------------------------------------------------------

    def replay(self) -> Dict[str, ReplayedJob]:
        """Rebuild every journaled job's latest state from the WAL."""
        jobs: Dict[str, ReplayedJob] = {}
        try:
            data = self.path.read_bytes()
        except OSError:
            data = b""
        for record in _iter_records(data, "service WAL"):
            self._n_records += 1
            if record.get("type") == "lease":
                # Lease-epoch records ride along in the same WAL.  They
                # are observational (stores are content-addressed, so
                # resume never needs them to be complete), and a job's
                # lease history without an accepted record is dropped
                # with the job below.
                job_id = record.get("job")
                task = record.get("task")
                epoch = record.get("epoch")
                if not isinstance(job_id, str) or not isinstance(task, str):
                    continue
                replayed = jobs.setdefault(job_id, ReplayedJob(job_id))
                if isinstance(epoch, int) and not isinstance(epoch, bool):
                    replayed.lease_epochs[task] = max(
                        replayed.lease_epochs.get(task, 0), epoch
                    )
                if record.get("event") == "duplicate":
                    replayed.duplicate_completions += 1
                continue
            if record.get("type") != "job":
                continue
            job_id = record.get("job")
            state = record.get("state")
            if not isinstance(job_id, str) or state not in (
                LIFECYCLE + (FAILED, CANCELLED)
            ):
                continue
            replayed = jobs.setdefault(job_id, ReplayedJob(job_id))
            replayed.state = state
            if state == ACCEPTED:
                replayed.tenant = record.get("tenant", "default")
                replayed.spec_fields = record.get("spec")
                replayed.deadline_s = record.get("deadline_s")
            elif state == FAILED:
                replayed.error = record.get("error")
                replayed.detail = record.get("detail", "")
            self._seq = max(self._seq, _job_seq(job_id))
        # Jobs whose accepted record was lost to a torn tail cannot be
        # rebuilt (no spec); drop them -- by construction the reply
        # naming the job was never sent, so no client holds its id.
        return {
            job_id: replayed
            for job_id, replayed in jobs.items()
            if replayed.spec_fields is not None
        }

    def begin(self) -> None:
        """Write the WAL's begin record (fresh logs only)."""
        if self._n_records == 0:
            self._append({
                "type": "svc-begin", "schema": SERVICE_WAL_SCHEMA,
            })

    # -- appends --------------------------------------------------------------

    def allocate_job_id(self, spec: CampaignSpec) -> str:
        with self._lock:
            self._seq += 1
            return "j%04d-%s" % (self._seq, spec.digest()[:8])

    def log_accepted(self, job: Job) -> None:
        self._append({
            "type": "job",
            "job": job.job_id,
            "state": ACCEPTED,
            "tenant": job.tenant,
            "spec": job.spec.to_wire(),
            "deadline_s": job.deadline_s,
        }, durable=True)

    def log_state(self, job_id: str, state: str, **extra) -> None:
        record = {"type": "job", "job": job_id, "state": state}
        record.update(extra)
        self._append(record, durable=state in TERMINAL)

    def log_lease(self, record: Dict) -> None:
        """Append one worker-pool lease event (``type: "lease"``).

        Non-durable: a lost lease record only loses reassignment
        *history*, never results -- duplicate-completion dedup is
        enforced by the in-memory pool and the content-addressed store,
        the WAL records the epochs so a post-mortem (and the replay
        tests) can reconstruct who executed what.
        """
        framed = {"type": "lease"}
        framed.update(record)
        framed["type"] = "lease"
        self._append(framed)

    def _append(self, record: Dict, durable: bool = False) -> None:
        with self._lock:
            self.journal.append(record, durable=durable)
            self._n_records += 1

    def close(self) -> None:
        with self._lock:
            self.journal.sync()
            self.journal.close()


def _job_seq(job_id: str) -> int:
    """The allocation sequence baked into a job id (0 when unparsable)."""
    try:
        return int(job_id.split("-", 1)[0].lstrip("j"))
    except (ValueError, IndexError):
        return 0


def job_from_replay(replayed: ReplayedJob) -> Job:
    """Rebuild an in-memory :class:`Job` from its WAL-replayed state."""
    job = Job(
        job_id=replayed.job_id,
        tenant=replayed.tenant,
        spec=CampaignSpec.from_wire(replayed.spec_fields),
        state=replayed.state,
        deadline_s=replayed.deadline_s,
        error=replayed.error,
        detail=replayed.detail or "",
        resumed=True,
    )
    return job


#: Re-exported record helper (the unit tests frame torn-tail fixtures).
encode_record = _encode_record
