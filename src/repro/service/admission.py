"""Admission control, backpressure, and fair scheduling policy.

Pure policy, no I/O: the server feeds in its current occupancy and gets
back either "admit" or a deterministic rejection ``(error code,
retry_after)``.  Keeping the policy side-effect free is what makes the
backpressure tests deterministic -- the same occupancy always yields the
same verdict, and the chaos faults (``queue_full``, ``tenant_flood``)
force each rejection branch without actually having to win a timing
race against the executor.

Knobs (environment, overridable per-server):

``REPRO_SVC_QUEUE_MAX``     total active (queued + running) jobs the
                            server holds before rejecting (default 64)
``REPRO_SVC_TENANT_MAX``    active jobs one tenant may hold (default 16)
``REPRO_SVC_RETRY_AFTER_S`` the ``retry_after`` hint on rejections
                            (default 1.0)

Fairness: :class:`FairQueue` is a round-robin over per-tenant FIFO
queues -- one flooding tenant can fill *its* quota but never starve
another tenant's queued jobs, because dispatch rotates tenants instead
of draining the global arrival order.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.resilience import faults
from repro.service import protocol

QUEUE_MAX_ENV = "REPRO_SVC_QUEUE_MAX"
TENANT_MAX_ENV = "REPRO_SVC_TENANT_MAX"
RETRY_AFTER_ENV = "REPRO_SVC_RETRY_AFTER_S"

_DEFAULT_QUEUE_MAX = 64
_DEFAULT_TENANT_MAX = 16
_DEFAULT_RETRY_AFTER = 1.0


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return default


@dataclass(frozen=True)
class ServiceLimits:
    """The admission knobs, resolved once at server start."""

    queue_max: int = _DEFAULT_QUEUE_MAX
    tenant_max: int = _DEFAULT_TENANT_MAX
    retry_after_s: float = _DEFAULT_RETRY_AFTER

    @classmethod
    def from_env(
        cls,
        queue_max: Optional[int] = None,
        tenant_max: Optional[int] = None,
        retry_after_s: Optional[float] = None,
    ) -> "ServiceLimits":
        return cls(
            queue_max=(
                queue_max if queue_max is not None
                else _env_int(QUEUE_MAX_ENV, _DEFAULT_QUEUE_MAX)
            ),
            tenant_max=(
                tenant_max if tenant_max is not None
                else _env_int(TENANT_MAX_ENV, _DEFAULT_TENANT_MAX)
            ),
            retry_after_s=(
                retry_after_s if retry_after_s is not None
                else _env_float(RETRY_AFTER_ENV, _DEFAULT_RETRY_AFTER)
            ),
        )


class AdmissionController:
    """Decides, deterministically, whether one submission is admitted.

    The decision order is fixed (drain, then global backpressure, then
    the tenant quota) so a submission rejected for one reason under
    load is rejected for the *same* reason on a retry into the same
    state -- clients can key backoff policy off the error code.
    """

    def __init__(self, limits: ServiceLimits):
        self.limits = limits

    def admit(
        self,
        tenant: str,
        active_total: int,
        active_tenant: int,
        draining: bool,
    ) -> Optional[Tuple[str, float]]:
        """``None`` to admit, else ``(error code, retry_after seconds)``.

        ``active_*`` counts cover queued plus running jobs -- a job
        stops consuming its slots only when it reaches a terminal
        state, so completion is the only thing that relieves pressure.
        The chaos faults force each rejection branch deterministically
        (one charge rejects exactly one submission).
        """
        retry = self.limits.retry_after_s
        if draining:
            return (protocol.ERR_DRAINING, retry)
        if faults.active() and faults.fire("queue_full"):
            return (protocol.ERR_QUEUE_FULL, retry)
        if active_total >= self.limits.queue_max:
            return (protocol.ERR_QUEUE_FULL, retry)
        if faults.active() and faults.fire("tenant_flood"):
            return (protocol.ERR_TENANT_OVER_QUOTA, retry)
        if active_tenant >= self.limits.tenant_max:
            return (protocol.ERR_TENANT_OVER_QUOTA, retry)
        return None


class FairQueue:
    """Round-robin across tenants, FIFO within a tenant.

    ``push`` appends to the submitting tenant's queue; ``pop`` serves
    the next tenant in rotation that has anything queued.  A tenant
    that drains empty leaves the rotation and re-enters at the back on
    its next submission, so bursty tenants cannot camp the front.
    """

    def __init__(self):
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, tenant: str, job_id: str) -> None:
        if tenant not in self._queues:
            self._queues[tenant] = deque()
        self._queues[tenant].append(job_id)
        self._count += 1

    def pop(self) -> Optional[str]:
        if not self._count:
            return None
        tenant, queue = next(iter(self._queues.items()))
        job_id = queue.popleft()
        self._count -= 1
        # Rotate: the served tenant goes to the back (or leaves, empty).
        del self._queues[tenant]
        if queue:
            self._queues[tenant] = queue
        return job_id

    def remove(self, job_id: str) -> bool:
        """Drop one queued job (cancellation); True when it was queued."""
        for tenant, queue in list(self._queues.items()):
            if job_id in queue:
                queue.remove(job_id)
                self._count -= 1
                if not queue:
                    del self._queues[tenant]
                return True
        return False

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is None:
            return self._count
        return len(self._queues.get(tenant, ()))

    def depths(self) -> Dict[str, int]:
        return {
            tenant: len(queue) for tenant, queue in self._queues.items()
        }
