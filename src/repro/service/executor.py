"""Execute one accepted campaign job against the shared trace store.

The executor is the bridge between a :class:`~repro.service.jobs.Job`
and the existing record-once / analyze-many machinery: it shards the
spec into the same run-level stage payloads the pipelined ``Suite``
scheduler uses (:mod:`repro.experiments.pipeline`), runs them either
inline (``workers <= 1``, the default -- jobs parallelize across the
server's thread pool instead) or through a
:meth:`~repro.resilience.supervisor.Supervisor.run_stream` worker pool,
assembles the :class:`~repro.injection.campaign.CampaignResult`, and
persists the finished result document into the store keyed by the
spec's content digest.

Everything is store-keyed and idempotent, which is the whole recovery
story: a job re-executed after a server crash skips every durable
recording (``has_run``), reuses every durable outcome bundle, and -- if
it got as far as committing -- serves the durable result document
without touching a single trace.  Byte-identity with the serial CLI
path follows because both feed the identical
``(seed, target, switch_probability)`` schedule through the identical
analysis ladder and render through the shared
:func:`~repro.injection.campaign.format_campaign_report`.

Cooperative interruption: the ``stop`` callable is polled between stage
tasks (and passed to the worker pool as its drain predicate); when it
trips, :class:`JobInterrupted` propagates and the caller decides what
the stop *meant* (drain: leave the job resumable; cancel/deadline:
terminal).  The ``store_corrupt_mid_job`` chaos fault truncates one
durable trace entry between the record and analyze phases, proving the
self-healing store (quarantine + deterministic re-record) holds inside
a service job too.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.experiments import pipeline
from repro.injection.campaign import (
    CampaignResult,
    RunResult,
    campaign_run_keys,
    campaign_sizing_seed,
    format_campaign_report,
)
from repro.resilience import faults
from repro.resilience.supervisor import Supervisor
from repro.trace.store import PackedTraceStore
from repro.workloads.registry import get_workload

#: Store namespace of service-level artifacts (committed result docs).
SERVICE_NAMESPACE = "service"

#: Result-document layout version.
RESULT_SCHEMA = 1


class JobInterrupted(Exception):
    """The job's stop predicate tripped at a safe point (resumable)."""


def result_key(spec) -> Tuple[str, str]:
    """Store key of a spec's committed result document."""
    return ("svc_result", spec.digest())


def load_result(store: PackedTraceStore, spec) -> Optional[Dict]:
    """The durable result document for ``spec``, or ``None``."""
    doc = store.load_value(SERVICE_NAMESPACE, result_key(spec))
    if (
        isinstance(doc, dict)
        and doc.get("schema") == RESULT_SCHEMA
        and isinstance(doc.get("report"), str)
        and isinstance(doc.get("campaign"), CampaignResult)
    ):
        return doc
    return None


def run_summary(run: RunResult) -> Dict:
    """The per-run event streamed to ``result`` clients (JSON-safe)."""
    return {
        "run_index": run.run_index,
        "manifested": run.manifested,
        "n_events": run.n_events,
        "flagged": dict(run.flagged),
    }


def _noop(*_args, **_kwargs) -> None:
    return None


def execute_job(
    spec,
    root,
    stop: Optional[Callable[[], bool]] = None,
    workers: int = 1,
    on_phase: Callable[..., None] = _noop,
    on_run: Callable[[RunResult], None] = _noop,
    pool=None,
    job_id: str = "",
) -> Dict:
    """Run ``spec``'s campaign to a committed result document.

    ``on_phase(name, **info)`` fires at each lifecycle transition the
    caller should journal (``sharded`` -- with the run-key shard plan
    and per-run durability -- then ``recording`` and ``analyzing``);
    ``on_run(run)`` fires per completed run, in run-index order.  Both
    are invoked on the executing thread; callers own thread safety.

    ``pool`` (a :class:`~repro.service.workers.pool.WorkerPool`) routes
    the stage tasks to remote workers when any are live at job start;
    with zero workers attached the job runs exactly the single-host
    path, and workers dying mid-job fall back to local execution inside
    the pool -- either way the result bytes are identical.

    Returns ``{"report", "campaign", "stats"}``.  Raises
    :class:`JobInterrupted` if ``stop`` tripped, or a
    :class:`~repro.common.errors.CordError` subtype on real failure.
    """
    stop = stop or (lambda: False)
    root = Path(root)
    store = PackedTraceStore(root / "traces")
    namespace = spec.trace_namespace()
    config = spec.campaign_config()
    use_remote = pool is not None and pool.live_worker_count() > 0

    cached = load_result(store, spec)
    if cached is not None:
        # A bit-identical campaign already committed (this tenant's
        # earlier job, another tenant's, or this job before the server
        # was killed): serve the durable document -- zero simulation,
        # zero analysis.
        campaign = cached["campaign"]
        keys = [
            (run.run_index, run.seed, run.target_index)
            for run in campaign.runs
        ]
        on_phase(
            "sharded",
            instances=campaign.sync_instances,
            keys=keys,
            durable=dict.fromkeys((k[0] for k in keys), True),
            switch_probability=config.switch_probability,
        )
        on_phase("recording")
        on_phase("analyzing")
        for run in campaign.runs:
            _check_stop(stop)
            on_run(run)
        return {
            "report": cached["report"],
            "campaign": campaign,
            "stats": {
                "result_hit": 1,
                "simulated": 0,
                "replayed": len(campaign.runs),
                "store": store.snapshot(),
            },
        }

    factory = get_workload(spec.workload).program_factory(
        spec.workload_params()
    )
    store_dir = str(store.root)
    remote_stats: Dict[str, int] = {}

    def run_local(payload: Dict) -> Dict:
        return pipeline.run_stage_task(payload, store=store,
                                       factory=factory)

    # -- shard: sizing run, then the deterministic run-key schedule ----
    _check_stop(stop)
    size_task = pipeline.size_payload(
        spec.workload, spec.workload_params(), store_dir, namespace,
        campaign_sizing_seed(spec.workload, config.base_seed),
    )
    if use_remote:
        values, stats, interrupted = pool.run_tasks(
            job_id or spec.digest(), [("size", size_task)], run_local,
            should_stop=stop,
        )
        _merge_stats(remote_stats, stats)
        if interrupted:
            raise JobInterrupted("job stop requested (pool drained)")
        sizing = values["size"]
    else:
        sizing = run_local(size_task)
    instances = sizing["instances"]
    if instances == 0:
        raise SimulationError(
            "workload %r has no injectable sync instances" % spec.workload
        )
    keys = campaign_run_keys(spec.workload, config, instances)
    durable = {
        run_index: store.has_run(
            namespace, (seed, target, config.switch_probability)
        )
        for run_index, seed, target in keys
    }
    on_phase(
        "sharded",
        instances=instances,
        keys=keys,
        durable=durable,
        switch_probability=config.switch_probability,
    )

    missing = [key for key in keys if not durable[key[0]]]
    results: Dict[int, RunResult] = {}
    emitted = [0]

    def emit_ready() -> None:
        # Stream runs in run-index order regardless of analysis order.
        while emitted[0] in results:
            on_run(results[emitted[0]])
            emitted[0] += 1

    def record_task(key: Tuple[int, int, int]) -> Dict:
        run_index, seed, target = key
        return pipeline.record_payload(
            spec.workload, spec.workload_params(), store_dir, namespace,
            run_index, seed, target, config.switch_probability,
        )

    def analyze_task(batch: List[Tuple[int, int, int]]) -> Dict:
        return pipeline.analyze_payload(
            spec.workload, spec.workload_params(), store_dir, namespace,
            batch, config.switch_probability, config.check_soundness,
        )

    batch_runs = pipeline.default_batch_runs()
    batches = [
        keys[start: start + batch_runs]
        for start in range(0, len(keys), batch_runs)
    ]

    if use_remote:
        _execute_remote(
            stop, store, run_local, pool, job_id or spec.digest(),
            missing, batches, record_task, analyze_task, on_phase,
            results, emit_ready, namespace, config.switch_probability,
            remote_stats,
        )
    elif workers <= 1:
        _execute_inline(
            stop, store, factory, missing, batches,
            record_task, analyze_task, on_phase, results, emit_ready,
            namespace, config.switch_probability,
        )
    else:
        _execute_pooled(
            stop, store, workers, missing, batches,
            record_task, analyze_task, on_phase, results, emit_ready,
            namespace, config.switch_probability,
        )

    campaign = CampaignResult(
        workload=spec.workload,
        detector_names=[s.name for s in config.detector_suite()],
        sync_instances=instances,
    )
    campaign.runs = [results[run_index] for run_index, _s, _t in keys]
    report = format_campaign_report(campaign)
    store.store_value(
        SERVICE_NAMESPACE, result_key(spec),
        {"schema": RESULT_SCHEMA, "report": report, "campaign": campaign},
    )
    stats_out = {
        "result_hit": 0,
        "simulated": len(missing),
        "replayed": len(keys) - len(missing),
        "store": store.snapshot(),
    }
    if use_remote:
        stats_out["remote"] = remote_stats
    return {
        "report": report,
        "campaign": campaign,
        "stats": stats_out,
    }


def _check_stop(stop: Callable[[], bool]) -> None:
    if stop():
        raise JobInterrupted("job stop requested")


def _merge_stats(into: Dict[str, int], stats: Dict[str, int]) -> None:
    for key, value in stats.items():
        if isinstance(value, int) and not isinstance(value, bool):
            into[key] = into.get(key, 0) + value


def _chaos_corrupt(
    store: PackedTraceStore,
    namespace: str,
    batches: List[List[Tuple[int, int, int]]],
    switch_probability: float,
) -> None:
    """The ``store_corrupt_mid_job`` fault: tear one durable recording.

    Fires between the record and analyze phases, truncating the first
    run's entry to half its frame.  The analyze stage must then detect
    the damage, quarantine the entry, deterministically re-record, and
    still produce the byte-identical report -- the store's self-healing
    contract, exercised through a live service job.
    """
    if not (faults.active() and faults.fire("store_corrupt_mid_job")):
        return
    for batch in batches:
        for _run_index, seed, target in batch:
            path = store.run_entry_path(
                namespace, (seed, target, switch_probability)
            )
            if path.exists():
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
                return


def _execute_inline(
    stop, store, factory, missing, batches,
    record_task, analyze_task, on_phase, results, emit_ready,
    namespace, switch_probability,
) -> None:
    """Serial stage execution with a stop check between stage tasks."""
    on_phase("recording")
    for key in missing:
        _check_stop(stop)
        pipeline.run_stage_task(record_task(key), store=store,
                                factory=factory)
    _check_stop(stop)
    _chaos_corrupt(store, namespace, batches, switch_probability)
    on_phase("analyzing")
    for batch in batches:
        _check_stop(stop)
        value = pipeline.run_stage_task(analyze_task(batch), store=store,
                                        factory=factory)
        for run_index, run in value["results"]:
            results[run_index] = run
        emit_ready()


def _execute_pooled(
    stop, store, workers, missing, batches,
    record_task, analyze_task, on_phase, results, emit_ready,
    namespace, switch_probability,
) -> None:
    """Stream the stage tasks through a supervisor worker pool.

    Same shape as ``Suite._run_pipelined`` scoped to one campaign: all
    record tasks enter the pool up front, and each analysis batch is
    submitted the moment its last member run is durable, so recording
    overlaps analysis.  The supervisor's retry / serial-fallback /
    poisoned-pool ladder rides along unchanged.
    """
    on_phase("recording")
    batch_of: Dict[int, int] = {}
    pending = []
    for index, batch in enumerate(batches):
        for run_index, _seed, _target in batch:
            batch_of[run_index] = index
        pending.append(
            sum(1 for key in batch if key in missing)
        )
    analyzing = [False]

    def start_analyzing() -> None:
        if not analyzing[0]:
            analyzing[0] = True
            _chaos_corrupt(store, namespace, batches, switch_probability)
            on_phase("analyzing")

    tasks = [
        ("record/%d" % key[0], record_task(key)) for key in missing
    ]
    ready_now = [
        index for index, left in enumerate(pending) if left == 0
    ]

    def on_result(outcome, value, submit) -> None:
        if outcome.name.startswith("record/"):
            index = batch_of[value["run_index"]]
            pending[index] -= 1
            if pending[index] == 0:
                start_analyzing()
                submit("analyze/%d" % index,
                       analyze_task(batches[index]))
            return
        for run_index, run in value["results"]:
            results[run_index] = run
        emit_ready()

    if ready_now and not missing:
        start_analyzing()
    for index in ready_now:
        tasks.append(("analyze/%d" % index, analyze_task(batches[index])))

    supervisor = Supervisor(jobs=workers)
    _values, report = supervisor.run_stream(
        pipeline.run_stage_task, tasks,
        on_result=on_result, should_stop=stop,
    )
    if report.interrupted:
        raise JobInterrupted("job stop requested (pool drained)")


def _execute_remote(
    stop, store, run_local, pool, job_id, missing, batches,
    record_task, analyze_task, on_phase, results, emit_ready,
    namespace, switch_probability, remote_stats,
) -> None:
    """Shard the stage tasks across the multi-host worker pool.

    The streaming shape mirrors ``_execute_pooled`` -- all record tasks
    enter up front, each analysis batch follows the moment its last
    member run completes -- but execution happens on whichever remote
    worker leases each task (with the pool's reassignment, dedup, and
    local fallback underneath, so a worker dying mid-shard never fails
    the job).
    """
    on_phase("recording")
    batch_of: Dict[int, int] = {}
    pending = []
    for index, batch in enumerate(batches):
        for run_index, _seed, _target in batch:
            batch_of[run_index] = index
        pending.append(
            sum(1 for key in batch if key in missing)
        )
    analyzing = [False]

    def start_analyzing() -> None:
        if not analyzing[0]:
            analyzing[0] = True
            _chaos_corrupt(store, namespace, batches, switch_probability)
            on_phase("analyzing")

    tasks = [
        ("record/%d" % key[0], record_task(key)) for key in missing
    ]
    ready_now = [
        index for index, left in enumerate(pending) if left == 0
    ]

    def on_result(name, value, submit) -> None:
        if name.startswith("record/"):
            index = batch_of[value["run_index"]]
            pending[index] -= 1
            if pending[index] == 0:
                start_analyzing()
                submit("analyze/%d" % index,
                       analyze_task(batches[index]))
            return
        for run_index, run in value["results"]:
            results[run_index] = run
        emit_ready()

    if ready_now and not missing:
        start_analyzing()
    for index in ready_now:
        tasks.append(("analyze/%d" % index, analyze_task(batches[index])))

    _values, stats, interrupted = pool.run_tasks(
        job_id, tasks, run_local,
        on_result=on_result, should_stop=stop,
    )
    _merge_stats(remote_stats, stats)
    if interrupted:
        raise JobInterrupted("job stop requested (pool drained)")
