"""The asyncio campaign server (race detection as a service).

One process, three moving parts:

* the **socket front end** -- a unix (or TCP) JSON-lines listener
  (:mod:`repro.service.protocol`) handling ``submit`` / ``status`` /
  ``result`` / ``cancel`` / ``health`` / ``drain``;
* the **admission layer** -- bounded active-job queue, per-tenant
  quotas, round-robin fair dispatch
  (:mod:`repro.service.admission`), rejecting with deterministic
  ``retry_after`` hints instead of queueing unboundedly;
* the **job engine** -- accepted jobs run on a thread pool via
  :func:`repro.service.executor.execute_job`, which shards each
  campaign into the run-level pipeline stages and records/analyzes
  against the shared content-addressed trace store, so identical
  recordings are made once globally and deduped across tenants.

Robustness contract (proven by the service chaos matrix):

* every transition of every job is appended to the job-state WAL
  (:class:`~repro.service.jobs.JobRegistry`) -- ``accepted`` durably
  *before* the submit reply, so an acknowledged job is never lost;
* a killed server restarts, replays the WAL, re-enqueues every
  non-terminal job, and completes it to a report byte-identical to the
  serial CLI path (the stores are the source of truth; re-execution
  skips all durable work);
* SIGTERM (or the ``drain`` op) stops admissions, interrupts running
  jobs at safe points, and exits with code 71 ("interrupted,
  resumable") plus a resume hint when any job remains in flight.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import sys
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from threading import Lock
from typing import Dict, Optional, Set

from repro.common.errors import CordError
from repro.resilience.checkpoint import INTERRUPTED_EXIT_CODE
from repro.service import jobs as jobmod
from repro.service import protocol
from repro.service.admission import (
    AdmissionController,
    FairQueue,
    ServiceLimits,
)
from repro.service.executor import (
    JobInterrupted,
    execute_job,
    load_result,
    run_summary,
)
from repro.service.jobs import (
    ANALYZING,
    CampaignSpec,
    COMMITTED,
    Job,
    JobRegistry,
    RESUMABLE,
    job_from_replay,
)
from repro.service.workers import (
    PoolLimits,
    UnknownLease,
    UnknownWorker,
    WorkerPool,
    replicate,
)
from repro.trace.store import PackedTraceStore

logger = logging.getLogger("repro.service.server")

CONCURRENCY_ENV = "REPRO_SVC_CONCURRENCY"
JOB_WORKERS_ENV = "REPRO_SVC_JOB_WORKERS"
DEADLINE_ENV = "REPRO_SVC_DEADLINE_S"

_DEFAULT_CONCURRENCY = 2


def _env_positive_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return default


def _env_optional_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            value = float(raw)
            return value if value > 0 else None
        except ValueError:
            pass
    return None


class CampaignServer:
    """One campaign-service instance bound to a state root directory.

    ``root`` holds everything durable: ``traces/`` (the shared
    content-addressed store) and ``service/jobs.wal`` (the job WAL).
    Two servers must not share a root concurrently; restarting one on
    the same root resumes it.
    """

    def __init__(
        self,
        root: os.PathLike,
        socket_path: Optional[os.PathLike] = None,
        host: Optional[str] = None,
        port: int = 0,
        limits: Optional[ServiceLimits] = None,
        concurrency: Optional[int] = None,
        job_workers: Optional[int] = None,
        default_deadline_s: Optional[float] = None,
    ):
        self.root = Path(root)
        self.socket_path = (
            Path(socket_path) if socket_path is not None
            else (None if host else self.root / "service.sock")
        )
        self.host = host
        self.port = port
        self.limits = limits or ServiceLimits.from_env()
        self.concurrency = concurrency or _env_positive_int(
            CONCURRENCY_ENV, _DEFAULT_CONCURRENCY
        )
        self.job_workers = job_workers or _env_positive_int(
            JOB_WORKERS_ENV, 1
        )
        self.default_deadline_s = (
            default_deadline_s
            if default_deadline_s is not None
            else _env_optional_float(DEADLINE_ENV)
        )

        self.registry = JobRegistry(self.root)
        #: Remote ``cord-worker`` pool; lease events land in the job WAL
        #: so epochs and dedup decisions survive a restart.
        self.workers = WorkerPool(
            limits=PoolLimits.from_env(),
            lease_log=self.registry.log_lease,
        )
        #: Store handle for the replication ops (same ``traces/`` root
        #: the executors use; paths are content-addressed so sharing is
        #: safe) plus transfer accounting for ``health``.
        self._repl_store = PackedTraceStore(self.root / "traces")
        self.repl_stats: Counter = Counter()
        self.admission = AdmissionController(self.limits)
        self.jobs: Dict[str, Job] = {}
        self.queue = FairQueue()
        self.running: Set[str] = set()
        self.stats: Counter = Counter()
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        # Created inside serve(): on 3.9 asyncio primitives bind the
        # loop that is current at construction time.
        self._stopped: Optional[asyncio.Event] = None
        self._tasks: Set[asyncio.Task] = set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.concurrency,
            thread_name_prefix="svc-job",
        )
        #: Cross-tenant dedup ledger: run key -> first-owner tenant,
        #: spec digest -> first-owner tenant.  Guarded (executor threads
        #: report shard plans concurrently).
        self._owner_lock = Lock()
        self._run_owner: Dict[tuple, str] = {}
        self._result_owner: Dict[str, str] = {}

    # -- lifecycle ------------------------------------------------------------

    async def serve(self) -> int:
        """Start, serve until drained/stopped, tear down; exit code."""
        self._stopped = asyncio.Event()
        self._resume_from_wal()
        self.registry.begin()
        await self._listen()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix event loops
        scan_task = asyncio.ensure_future(self._scan_workers())
        self._tasks.add(scan_task)
        scan_task.add_done_callback(self._tasks.discard)
        self._pump()
        await self._stopped.wait()
        return await self._shutdown()

    async def _scan_workers(self) -> None:
        """Advance worker liveness / lease deadlines on a timer."""
        interval = max(0.05, self.workers.limits.heartbeat_s / 2.0)
        while True:
            await asyncio.sleep(interval)
            self.workers.scan()

    async def _listen(self) -> None:
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(self.socket_path),
                limit=1 << 20,
            )
            where = str(self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port,
                limit=1 << 20,
            )
            bound = self._server.sockets[0].getsockname()
            self.port = bound[1]
            where = "%s:%d" % (bound[0], bound[1])
        print("cord-serve: listening on %s" % where, file=sys.stderr,
              flush=True)

    def _resume_from_wal(self) -> None:
        """Replay the job WAL and re-enqueue every non-terminal job."""
        store = PackedTraceStore(self.root / "traces")
        replayed = self.registry.replay()
        for job_id in sorted(replayed):
            entry = replayed[job_id]
            job = job_from_replay(entry)
            job.done_event = asyncio.Event()
            self.jobs[job_id] = job
            if job.state == COMMITTED:
                doc = load_result(store, job.spec)
                if doc is not None:
                    self._adopt_committed(job, doc)
                    continue
                # Committed per the WAL but the result document is
                # gone (damaged store): demote to resumable -- the
                # keyed artifacts rebuild it deterministically.
                job.state = ANALYZING
            if job.state in RESUMABLE:
                # Resume bypasses admission: these jobs were already
                # admitted (and acknowledged) by a previous life.
                self.stats["resumed"] += 1
                self.queue.push(job.tenant, job_id)
            else:
                job.done_event.set()
            logger.info(
                "resumed job %s (%s) in state %s",
                job_id, job.tenant, job.state,
            )

    def _adopt_committed(self, job: Job, doc: Dict) -> None:
        """Hydrate a committed job from its durable result document."""
        campaign = doc["campaign"]
        job.report = doc["report"]
        job.sync_instances = campaign.sync_instances
        job.runs_done = len(campaign.runs)
        job.run_events = [
            (run.run_index, run_summary(run)) for run in campaign.runs
        ]
        job.state = COMMITTED
        job.done_event.set()

    async def _shutdown(self) -> int:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)
        self.registry.close()
        resumable = sorted(
            job_id for job_id, job in self.jobs.items() if not job.terminal
        )
        if resumable:
            print(
                "cord-serve: drained with %d job(s) in flight (%s); "
                "restart with the same --root to resume them"
                % (len(resumable), ", ".join(resumable)),
                file=sys.stderr, flush=True,
            )
            return INTERRUPTED_EXIT_CODE
        return 0

    def begin_drain(self) -> None:
        """Stop admitting, interrupt running jobs, exit when quiesced."""
        if self.draining:
            return
        self.draining = True
        print("cord-serve: draining (no new submissions accepted)",
              file=sys.stderr, flush=True)
        self.workers.drain()
        for job_id in list(self.running):
            self.jobs[job_id].interrupt("drain")
        self._maybe_stop()

    def _maybe_stop(self) -> None:
        if self.draining and not self.running and self._stopped is not None:
            self._stopped.set()

    # -- scheduling -----------------------------------------------------------

    def _active_counts(self):
        total = 0
        by_tenant: Counter = Counter()
        for job in self.jobs.values():
            if not job.terminal:
                total += 1
                by_tenant[job.tenant] += 1
        return total, by_tenant

    def _pump(self) -> None:
        """Dispatch queued jobs while concurrency slots are free."""
        while (
            not self.draining
            and len(self.running) < self.concurrency
            and len(self.queue)
        ):
            job_id = self.queue.pop()
            job = self.jobs[job_id]
            self.running.add(job_id)
            task = asyncio.ensure_future(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        deadline_handle = None
        if job.deadline_s:
            deadline_handle = loop.call_later(
                job.deadline_s, job.interrupt, "deadline"
            )

        def on_phase(name: str, **info) -> None:
            # Executor-thread callback: journal the transition and keep
            # the in-memory view current.  The registry append is the
            # chaos matrix's svc_kill tick point.
            if name == "sharded":
                job.sync_instances = info["instances"]
                self._note_dedup(
                    job, info["keys"], info["durable"],
                    info["switch_probability"],
                )
                job.state = jobmod.SHARDED
                self.registry.log_state(
                    job.job_id, jobmod.SHARDED,
                    instances=info["instances"],
                )
                return
            state = (
                jobmod.RECORDING if name == "recording"
                else jobmod.ANALYZING
            )
            job.state = state
            self.registry.log_state(job.job_id, state)

        def on_run(run) -> None:
            job.run_events.append((run.run_index, run_summary(run)))
            job.runs_done = len(job.run_events)

        try:
            outcome = await loop.run_in_executor(
                self._pool,
                lambda: execute_job(
                    job.spec, self.root,
                    stop=job.should_stop,
                    workers=self.job_workers,
                    on_phase=on_phase,
                    on_run=on_run,
                    pool=self.workers,
                    job_id=job.job_id,
                ),
            )
        except JobInterrupted:
            self._finish_interrupted(job)
        except CordError as exc:
            self._finish_failed(job, exc)
        except Exception as exc:  # noqa: BLE001 -- a job bug must not
            # take the server down with it; it fails that job only.
            logger.exception("job %s crashed", job.job_id)
            self._finish_failed(job, exc)
        else:
            self._note_result_dedup(job, outcome["stats"])
            job.report = outcome["report"]
            for key, value in outcome["stats"].items():
                if isinstance(value, int):
                    job.stats[key] = job.stats.get(key, 0) + value
            job.stats["store"] = outcome["stats"].get("store", {})
            remote = outcome["stats"].get("remote")
            if remote:
                job.stats["remote"] = {
                    key: int(value) for key, value in sorted(remote.items())
                }
            job.state = COMMITTED
            # Result document first (store = source of truth), then the
            # WAL commit -- a kill between the two replays as
            # "analyzing" and re-commits from the durable document.
            self.registry.log_state(job.job_id, COMMITTED)
        finally:
            if deadline_handle is not None:
                deadline_handle.cancel()
            self.running.discard(job.job_id)
            if job.terminal:
                job.done_event.set()
            self._pump()
            self._maybe_stop()

    def _finish_interrupted(self, job: Job) -> None:
        reason = job.stop_reason or "drain"
        if reason == "cancel":
            job.state = jobmod.CANCELLED
            job.error = protocol.ERR_CANCELLED
            self.registry.log_state(job.job_id, jobmod.CANCELLED)
        elif reason == "deadline":
            job.state = jobmod.FAILED
            job.error = protocol.ERR_DEADLINE
            job.detail = (
                "job exceeded its %.3fs deadline" % (job.deadline_s or 0.0)
            )
            self.registry.log_state(
                job.job_id, jobmod.FAILED,
                error=job.error, detail=job.detail,
            )
        else:
            # Drain: deliberately *no* WAL write -- the job keeps its
            # last journaled state and the next server resumes it.
            logger.info("job %s checkpointed for drain", job.job_id)

    def _finish_failed(self, job: Job, exc: BaseException) -> None:
        job.state = jobmod.FAILED
        job.error = protocol.ERR_JOB_FAILED
        job.detail = "%s: %s" % (type(exc).__name__, exc)
        self.registry.log_state(
            job.job_id, jobmod.FAILED, error=job.error, detail=job.detail,
        )

    # -- cross-tenant dedup accounting ---------------------------------------

    def _note_dedup(self, job, keys, durable, switch_probability) -> None:
        namespace = job.spec.trace_namespace()
        hits = 0
        with self._owner_lock:
            for run_index, seed, target in keys:
                run_key = (namespace, seed, target, switch_probability)
                owner = self._run_owner.setdefault(run_key, job.tenant)
                if durable.get(run_index) and owner != job.tenant:
                    hits += 1
        if hits:
            job.stats["dedup_run_hits"] = (
                job.stats.get("dedup_run_hits", 0) + hits
            )
            self.stats["dedup_run_hits"] += hits

    def _note_result_dedup(self, job, stats: Dict) -> None:
        if not stats.get("result_hit"):
            with self._owner_lock:
                self._result_owner.setdefault(job.spec.digest(),
                                              job.tenant)
            return
        with self._owner_lock:
            owner = self._result_owner.setdefault(
                job.spec.digest(), job.tenant
            )
        if owner != job.tenant:
            job.stats["dedup_result_hits"] = (
                job.stats.get("dedup_result_hits", 0) + 1
            )
            self.stats["dedup_result_hits"] += 1

    # -- protocol front end ---------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode_message(line)
                except protocol.ProtocolError as exc:
                    self._send(writer, protocol.error_response(
                        protocol.ERR_BAD_REQUEST, str(exc),
                    ))
                    await writer.drain()
                    continue
                await self._dispatch(message, writer)
                await writer.drain()
        except (ConnectionError, asyncio.LimitOverrunError,
                asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except OSError:
                pass

    @staticmethod
    def _send(writer, message: Dict) -> None:
        writer.write(protocol.encode_message(message))

    async def _dispatch(self, message: Dict, writer) -> None:
        op = message.get("op")
        request_id = message.get("id")
        if op == "submit":
            self._send(writer, self._op_submit(message, request_id))
        elif op == "status":
            self._send(writer, self._op_status(message, request_id))
        elif op == "cancel":
            self._send(writer, self._op_cancel(message, request_id))
        elif op == "health":
            self._send(writer, self._op_health(request_id))
        elif op == "drain":
            self._send(writer, self._op_drain(request_id))
            await writer.drain()
            asyncio.get_running_loop().call_soon(self.begin_drain)
        elif op == "result":
            await self._op_result(message, request_id, writer)
        elif op == "worker_register":
            self._send(writer, self._op_worker_register(message, request_id))
        elif op == "worker_heartbeat":
            self._send(writer, self._op_worker_heartbeat(message, request_id))
        elif op == "worker_lease":
            self._send(writer, self._op_worker_lease(message, request_id))
        elif op == "worker_complete":
            self._send(writer, self._op_worker_complete(message, request_id))
        elif op == "worker_fail":
            self._send(writer, self._op_worker_fail(message, request_id))
        elif op == "worker_deregister":
            self._send(
                writer, self._op_worker_deregister(message, request_id)
            )
        elif op == "repl_pull":
            self._send(writer, self._op_repl_pull(message, request_id))
        elif op == "repl_push":
            self._send(writer, self._op_repl_push(message, request_id))
        else:
            self._send(writer, protocol.error_response(
                protocol.ERR_UNKNOWN_OP,
                "unknown op %r (choices: %s)"
                % (op, ", ".join(protocol.OPS)),
                request_id,
            ))

    def _op_submit(self, message: Dict, request_id) -> Dict:
        try:
            fields = protocol.validate_submit(message)
        except protocol.ProtocolError as exc:
            return protocol.error_response(
                protocol.ERR_BAD_REQUEST, str(exc), request_id,
            )
        tenant = fields["tenant"]
        total, by_tenant = self._active_counts()
        verdict = self.admission.admit(
            tenant, total, by_tenant.get(tenant, 0), self.draining,
        )
        if verdict is not None:
            code, retry_after = verdict
            self.stats["rejected_%s" % code] += 1
            return protocol.error_response(
                code,
                "submission rejected (%s); retry after %.1fs"
                % (code, retry_after),
                request_id,
                retry_after=retry_after,
            )
        spec = CampaignSpec(
            workload=fields["workload"],
            runs=fields["runs"],
            seed=fields["seed"],
            scale=fields["scale"],
            switch_probability=fields["switch_probability"],
        )
        job_id = self.registry.allocate_job_id(spec)
        job = Job(
            job_id=job_id,
            tenant=tenant,
            spec=spec,
            deadline_s=fields["deadline_s"] or self.default_deadline_s,
        )
        job.done_event = asyncio.Event()
        self.jobs[job_id] = job
        # The accepted record is durable BEFORE the reply goes out:
        # once a client holds a job id, no crash may forget the job.
        self.registry.log_accepted(job)
        self.stats["accepted"] += 1
        self.queue.push(tenant, job_id)
        self._pump()
        return protocol.ok_response(
            "submit", request_id,
            job=job_id, state=job.state, spec=spec.to_wire(),
            tenant=tenant,
        )

    def _lookup(self, message: Dict, request_id):
        job_id = message.get("job")
        job = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            return None, protocol.error_response(
                protocol.ERR_UNKNOWN_JOB,
                "no job %r on this server" % (job_id,), request_id,
            )
        return job, None

    def _op_status(self, message: Dict, request_id) -> Dict:
        job, error = self._lookup(message, request_id)
        if error is not None:
            return error
        return protocol.ok_response(
            "status", request_id, **job.status_fields()
        )

    def _op_cancel(self, message: Dict, request_id) -> Dict:
        job, error = self._lookup(message, request_id)
        if error is not None:
            return error
        if job.terminal:
            return protocol.ok_response(
                "cancel", request_id, job=job.job_id, state=job.state,
            )
        if self.queue.remove(job.job_id):
            job.state = jobmod.CANCELLED
            job.error = protocol.ERR_CANCELLED
            self.registry.log_state(job.job_id, jobmod.CANCELLED)
            job.done_event.set()
            return protocol.ok_response(
                "cancel", request_id, job=job.job_id, state=job.state,
            )
        job.interrupt("cancel")
        return protocol.ok_response(
            "cancel", request_id, job=job.job_id, state="cancelling",
        )

    def _op_health(self, request_id) -> Dict:
        total, by_tenant = self._active_counts()
        by_state: Counter = Counter()
        for job in self.jobs.values():
            by_state[job.state] += 1
        return protocol.ok_response(
            "health", request_id,
            state="draining" if self.draining else "serving",
            version=protocol.PROTOCOL_VERSION,
            queue={
                "depth": len(self.queue),
                "running": len(self.running),
                "active": total,
                "max": self.limits.queue_max,
                "by_tenant": self.queue.depths(),
            },
            tenants={
                tenant: {
                    "active": count,
                    "max": self.limits.tenant_max,
                }
                for tenant, count in sorted(by_tenant.items())
            },
            jobs={
                "total": len(self.jobs),
                "by_state": dict(sorted(by_state.items())),
            },
            jobs_list=[
                {
                    "job": job_id,
                    "tenant": self.jobs[job_id].tenant,
                    "state": self.jobs[job_id].state,
                }
                for job_id in sorted(self.jobs)
            ],
            stats={
                key: int(value) for key, value in sorted(self.stats.items())
            },
            workers=dict(
                self.workers.health(),
                replication={
                    key: int(value)
                    for key, value in sorted(self.repl_stats.items())
                },
            ),
            limits={
                "queue_max": self.limits.queue_max,
                "tenant_max": self.limits.tenant_max,
                "retry_after_s": self.limits.retry_after_s,
                "concurrency": self.concurrency,
                "job_workers": self.job_workers,
            },
        )

    def _op_drain(self, request_id) -> Dict:
        pending = sorted(
            job_id for job_id, job in self.jobs.items() if not job.terminal
        )
        return protocol.ok_response("drain", request_id, pending=pending)

    # -- worker-pool ops -------------------------------------------------------

    def _unknown_worker(self, exc: UnknownWorker, request_id) -> Dict:
        self.stats["unknown_worker_requests"] += 1
        return protocol.error_response(
            protocol.ERR_UNKNOWN_WORKER,
            "no live worker %s on this server (re-register)" % exc,
            request_id,
        )

    def _op_worker_register(self, message: Dict, request_id) -> Dict:
        if self.draining:
            return protocol.error_response(
                protocol.ERR_DRAINING,
                "server is draining; not attaching workers",
                request_id, retry_after=self.limits.retry_after_s,
            )
        fields = self.workers.register(
            name=str(message.get("name", ""))[:64],
            pid=int(message.get("pid") or 0),
            host=str(message.get("host", ""))[:128],
        )
        self.stats["workers_attached"] += 1
        return protocol.ok_response("worker_register", request_id, **fields)

    def _op_worker_heartbeat(self, message: Dict, request_id) -> Dict:
        try:
            fields = self.workers.heartbeat(str(message.get("worker", "")))
        except UnknownWorker as exc:
            return self._unknown_worker(exc, request_id)
        return protocol.ok_response("worker_heartbeat", request_id, **fields)

    def _op_worker_lease(self, message: Dict, request_id) -> Dict:
        try:
            grant = self.workers.lease(str(message.get("worker", "")))
        except UnknownWorker as exc:
            return self._unknown_worker(exc, request_id)
        if grant is None:
            return protocol.ok_response(
                "worker_lease", request_id, idle=True,
                draining=self.draining or self.workers.draining,
            )
        payload = grant.pop("payload")
        return protocol.ok_response(
            "worker_lease", request_id,
            payload=replicate.pickle_blob(payload), **grant,
        )

    def _op_worker_complete(self, message: Dict, request_id) -> Dict:
        worker = str(message.get("worker", ""))
        lease = str(message.get("lease", ""))
        epoch = int(message.get("epoch") or 0)
        blob = message.get("value")
        try:
            value = replicate.unpickle_blob(
                blob if isinstance(blob, dict) else {}, "completion value"
            )
        except replicate.ReplicaIntegrityError as exc:
            # Keep the evidence, reject, let the worker re-encode.
            self.repl_stats["corrupt_rejected"] += 1
            self._repl_store.quarantine_bytes(
                "complete-%s.bin" % (lease or "unknown"),
                replicate.raw_bytes(blob if isinstance(blob, dict) else {}),
                exc,
            )
            return protocol.error_response(
                protocol.ERR_REPLICA_CORRUPT, str(exc), request_id,
            )
        try:
            fields = self.workers.complete(worker, lease, epoch, value)
        except UnknownWorker as exc:
            return self._unknown_worker(exc, request_id)
        except UnknownLease as exc:
            return protocol.error_response(
                protocol.ERR_UNKNOWN_LEASE,
                "lease %s is not open or retired here" % exc, request_id,
            )
        return protocol.ok_response("worker_complete", request_id, **fields)

    def _op_worker_fail(self, message: Dict, request_id) -> Dict:
        try:
            fields = self.workers.fail(
                str(message.get("worker", "")),
                str(message.get("lease", "")),
                int(message.get("epoch") or 0),
                str(message.get("detail", ""))[:500],
            )
        except UnknownWorker as exc:
            return self._unknown_worker(exc, request_id)
        except UnknownLease as exc:
            return protocol.error_response(
                protocol.ERR_UNKNOWN_LEASE,
                "lease %s is not open or retired here" % exc, request_id,
            )
        return protocol.ok_response("worker_fail", request_id, **fields)

    def _op_worker_deregister(self, message: Dict, request_id) -> Dict:
        stats = message.get("stats")
        try:
            released = self.workers.deregister(
                str(message.get("worker", "")),
                stats=stats if isinstance(stats, dict) else None,
            )
        except UnknownWorker as exc:
            return self._unknown_worker(exc, request_id)
        return protocol.ok_response(
            "worker_deregister", request_id, released=released,
        )

    # -- store replication ops -------------------------------------------------

    def _repl_key(self, message: Dict, request_id):
        """Parse (kind, namespace, components) or an error response."""
        wire_kind = message.get("kind")
        disk_kind = replicate.ENTRY_KINDS.get(wire_kind)
        namespace = message.get("namespace")
        if disk_kind is None or not isinstance(namespace, str) \
                or not namespace:
            return protocol.error_response(
                protocol.ERR_BAD_REQUEST,
                "replication needs kind in %s and a namespace"
                % sorted(replicate.ENTRY_KINDS),
                request_id,
            )
        try:
            components = replicate.components_from_wire(
                message.get("components")
            )
        except ValueError as exc:
            return protocol.error_response(
                protocol.ERR_BAD_REQUEST, str(exc), request_id,
            )
        return disk_kind, namespace, components

    def _op_repl_pull(self, message: Dict, request_id) -> Dict:
        parsed = self._repl_key(message, request_id)
        if isinstance(parsed, dict):
            return parsed
        kind, namespace, components = parsed
        raw = replicate.read_entry(
            self._repl_store, kind, namespace, components
        )
        if raw is None:
            return protocol.error_response(
                protocol.ERR_NOT_FOUND,
                "no such %s entry on this server"
                % message.get("kind"), request_id,
            )
        self.repl_stats["pulls"] += 1
        self.repl_stats["bytes_out"] += len(raw)
        return protocol.ok_response(
            "repl_pull", request_id, **replicate.encode_blob(raw)
        )

    def _op_repl_push(self, message: Dict, request_id) -> Dict:
        parsed = self._repl_key(message, request_id)
        if isinstance(parsed, dict):
            return parsed
        kind, namespace, components = parsed
        try:
            raw = replicate.decode_blob(message, "pushed entry")
        except replicate.ReplicaIntegrityError as exc:
            self.repl_stats["corrupt_rejected"] += 1
            self._repl_store.quarantine_bytes(
                "push-%s.bin" % namespace,
                replicate.raw_bytes(message), exc,
            )
            return protocol.error_response(
                protocol.ERR_REPLICA_CORRUPT, str(exc), request_id,
            )
        try:
            stored = replicate.install_entry(
                self._repl_store, kind, namespace, components, raw
            )
        except replicate.ReplicaIntegrityError as exc:
            # install_entry already quarantined the bytes.
            self.repl_stats["corrupt_rejected"] += 1
            return protocol.error_response(
                protocol.ERR_REPLICA_CORRUPT, str(exc), request_id,
            )
        self.repl_stats["pushes"] += 1
        self.repl_stats["bytes_in"] += len(raw)
        if not stored:
            self.repl_stats["push_duplicates"] += 1
        return protocol.ok_response(
            "repl_push", request_id, stored=stored, duplicate=not stored,
        )

    async def _op_result(self, message: Dict, request_id, writer) -> None:
        job, error = self._lookup(message, request_id)
        if error is not None:
            self._send(writer, error)
            return
        stream = bool(message.get("stream"))
        timeout_s = message.get("timeout_s")
        deadline = (
            asyncio.get_running_loop().time() + float(timeout_s)
            if timeout_s is not None else None
        )
        emitted = 0
        while True:
            if stream:
                while emitted < len(job.run_events):
                    run_index, summary = job.run_events[emitted]
                    self._send(writer, {
                        "event": "run", "job": job.job_id,
                        "run_index": run_index, **summary,
                    })
                    emitted += 1
                await writer.drain()
            if job.done_event.is_set():
                break
            if deadline is not None and (
                asyncio.get_running_loop().time() >= deadline
            ):
                self._send(writer, protocol.error_response(
                    protocol.ERR_PENDING,
                    "job %s still %s" % (job.job_id, job.state),
                    request_id,
                    retry_after=self.limits.retry_after_s,
                    final=True, job=job.job_id, state=job.state,
                ))
                return
            try:
                await asyncio.wait_for(
                    job.done_event.wait(),
                    timeout=0.05 if stream else 0.25,
                )
            except asyncio.TimeoutError:
                continue
        if stream:
            # Flush runs that landed with the terminal transition.
            while emitted < len(job.run_events):
                run_index, summary = job.run_events[emitted]
                self._send(writer, {
                    "event": "run", "job": job.job_id,
                    "run_index": run_index, **summary,
                })
                emitted += 1
        if job.state == COMMITTED:
            self._send(writer, protocol.ok_response(
                "result", request_id,
                event="result", final=True,
                job=job.job_id, state=job.state,
                report=job.report,
                stats=_json_stats(job.stats),
                sync_instances=job.sync_instances,
                runs_done=job.runs_done,
            ))
        else:
            self._send(writer, protocol.error_response(
                job.error or protocol.ERR_JOB_FAILED,
                job.detail, request_id,
                event="result", final=True,
                job=job.job_id, state=job.state,
            ))


def _json_stats(stats: Dict) -> Dict:
    """Job stats as a JSON-safe dict (nested store snapshot included)."""
    out = {}
    for key, value in sorted(stats.items()):
        if isinstance(value, dict):
            out[key] = {k: int(v) for k, v in sorted(value.items())}
        elif isinstance(value, int):
            out[key] = value
    return out


async def serve(**kwargs) -> int:
    """Construct a :class:`CampaignServer` and run it to completion."""
    server = CampaignServer(**kwargs)
    return await server.serve()
