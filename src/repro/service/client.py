"""Synchronous client for the campaign service.

Deliberately stdlib-only and connection-per-request: every call opens a
fresh socket, sends one JSON line, and reads the response line(s).
That makes the client trivially robust to server restarts -- the exact
scenario the service is built around -- at a per-request cost that is
noise next to a campaign.  Responses are returned as plain dicts
(``{"ok": bool, ...}``); nothing raises on an application-level error
except :class:`ServiceUnavailable` when the socket itself cannot be
reached (so callers can implement retry-after loops around rejections
without exception plumbing).
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.service import protocol


class ServiceUnavailable(ConnectionError):
    """The server socket could not be reached (down or still starting)."""


class ServiceClient:
    """Talk to one campaign server over its unix or TCP socket."""

    def __init__(
        self,
        socket_path=None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 60.0,
    ):
        if socket_path is None and host is None:
            raise ValueError("need a socket_path or a host/port")
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(str(self.socket_path))
                return sock
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceUnavailable(
                "campaign server unreachable: %s" % exc
            )

    def _roundtrip(self, message: Dict) -> Dict:
        for response in self._stream(message):
            return response
        raise ServiceUnavailable("server closed the connection mid-request")

    def _stream(self, message: Dict) -> Iterator[Dict]:
        sock = self._connect()
        try:
            sock.sendall(protocol.encode_message(message))
            with sock.makefile("rb") as fh:
                for line in fh:
                    yield protocol.decode_message(line)
        finally:
            sock.close()

    # -- operations -----------------------------------------------------------

    def submit(self, workload: str, **fields) -> Dict:
        message = {"op": "submit", "workload": workload}
        message.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        return self._roundtrip(message)

    def status(self, job: str) -> Dict:
        return self._roundtrip({"op": "status", "job": job})

    def result(
        self, job: str, timeout_s: Optional[float] = None
    ) -> Dict:
        """Block until the job terminalizes; its final result line."""
        message: Dict = {"op": "result", "job": job}
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        return self._roundtrip(message)

    def stream_result(
        self, job: str, timeout_s: Optional[float] = None
    ) -> Iterator[Dict]:
        """Yield per-run event lines, then the final result line."""
        message: Dict = {"op": "result", "job": job, "stream": True}
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        for response in self._stream(message):
            yield response
            if response.get("final"):
                return

    def cancel(self, job: str) -> Dict:
        return self._roundtrip({"op": "cancel", "job": job})

    def health(self) -> Dict:
        return self._roundtrip({"op": "health"})

    def drain(self) -> Dict:
        return self._roundtrip({"op": "drain"})

    # -- conveniences ---------------------------------------------------------

    def wait_ready(
        self, timeout: float = 30.0, interval: float = 0.05
    ) -> Dict:
        """Poll ``health`` until the server answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceUnavailable:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    def submit_with_retry(
        self,
        workload: str,
        attempts: int = 20,
        **fields,
    ) -> Dict:
        """Submit, honoring ``retry_after`` on retryable rejections."""
        last: Dict = {}
        for _ in range(attempts):
            last = self.submit(workload, **fields)
            if last.get("ok") or last.get("error") not in protocol.RETRYABLE:
                return last
            time.sleep(float(last.get("retry_after", 0.05)))
        return last
