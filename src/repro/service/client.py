"""Synchronous client for the campaign service.

Deliberately stdlib-only and connection-per-request: every call opens a
fresh socket, sends one JSON line, and reads the response line(s).
That makes the client trivially robust to server restarts -- the exact
scenario the service is built around -- at a per-request cost that is
noise next to a campaign.  Responses are returned as plain dicts
(``{"ok": bool, ...}``); nothing raises on an application-level error
except :class:`ServiceUnavailable` when the socket itself cannot be
reached (so callers can implement retry-after loops around rejections
without exception plumbing).
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.common.rng import DeterministicRng
from repro.service import protocol

#: Connect-retry backoff shape: the delay doubles from ``BACKOFF_BASE_S``
#: per attempt up to ``BACKOFF_CAP_S``, each scaled by a deterministic
#: jitter factor in [0.5, 1.0) so a fleet of reconnecting workers does
#: not stampede the listener in lockstep.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


def connect_backoff(
    key: str,
    attempt: int,
    base: float = BACKOFF_BASE_S,
    cap: float = BACKOFF_CAP_S,
) -> float:
    """Capped exponential backoff with deterministic jitter.

    The jitter is a pure function of ``(key, attempt)`` via the named
    fork machinery in :mod:`repro.common.rng` -- two processes with
    different keys desynchronize, while any single schedule is exactly
    reproducible (the chaos tests assert on it).
    """
    bounded = min(cap, base * (2 ** min(max(0, attempt), 16)))
    jitter = (
        DeterministicRng(0, "connect-backoff")
        .fork(key)
        .fork("attempt%d" % attempt)
        .random()
    )
    return bounded * (0.5 + 0.5 * jitter)


class ServiceUnavailable(ConnectionError):
    """The server socket could not be reached (down or still starting)."""


class ServiceClient:
    """Talk to one campaign server over its unix or TCP socket.

    ``connect_timeout`` bounds connection-level retry: while it is
    positive, ECONNREFUSED/reset during connect is retried with capped
    exponential backoff + deterministic jitter until the budget is
    spent; at 0 (the default) a failed connect raises
    :class:`ServiceUnavailable` immediately, preserving fail-fast
    semantics for health polls and liveness probes.
    """

    def __init__(
        self,
        socket_path=None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 60.0,
        connect_timeout: float = 0.0,
    ):
        if socket_path is None and host is None:
            raise ValueError("need a socket_path or a host/port")
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = max(0.0, connect_timeout)

    # -- transport ------------------------------------------------------------

    def _endpoint(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return "%s:%s" % (self.host, self.port)

    def _connect_once(self) -> socket.socket:
        """One connection attempt; raises plain :class:`OSError`."""
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(str(self.socket_path))
            except OSError:
                sock.close()
                raise
            return sock
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_timeout
        attempt = 0
        while True:
            try:
                return self._connect_once()
            except OSError as exc:
                now = time.monotonic()
                if self.connect_timeout <= 0 or now >= deadline:
                    raise ServiceUnavailable(
                        "campaign server unreachable: %s" % exc
                    )
                delay = connect_backoff(self._endpoint(), attempt)
                time.sleep(min(delay, max(0.001, deadline - now)))
                attempt += 1

    def _roundtrip(self, message: Dict) -> Dict:
        for response in self._stream(message):
            return response
        raise ServiceUnavailable("server closed the connection mid-request")

    def _stream(self, message: Dict) -> Iterator[Dict]:
        # A server that dies after accepting surfaces as a reset/broken
        # pipe on the established socket, not as a connect failure --
        # wrap those too so callers see one retryable exception type.
        sock = self._connect()
        try:
            try:
                sock.sendall(protocol.encode_message(message))
                fh = sock.makefile("rb")
            except OSError as exc:
                raise ServiceUnavailable(
                    "connection lost mid-request: %s" % exc
                )
            with fh:
                while True:
                    try:
                        line = fh.readline()
                    except OSError as exc:
                        raise ServiceUnavailable(
                            "connection lost mid-stream: %s" % exc
                        )
                    if not line:
                        return
                    yield protocol.decode_message(line)
        finally:
            sock.close()

    # -- operations -----------------------------------------------------------

    def call(self, message: Dict) -> Dict:
        """One raw request/response round trip (worker and tooling use)."""
        return self._roundtrip(message)

    def submit(self, workload: str, **fields) -> Dict:
        message = {"op": "submit", "workload": workload}
        message.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        return self._roundtrip(message)

    def status(self, job: str) -> Dict:
        return self._roundtrip({"op": "status", "job": job})

    def result(
        self, job: str, timeout_s: Optional[float] = None
    ) -> Dict:
        """Block until the job terminalizes; its final result line."""
        message: Dict = {"op": "result", "job": job}
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        return self._roundtrip(message)

    def stream_result(
        self, job: str, timeout_s: Optional[float] = None
    ) -> Iterator[Dict]:
        """Yield per-run event lines, then the final result line."""
        message: Dict = {"op": "result", "job": job, "stream": True}
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        for response in self._stream(message):
            yield response
            if response.get("final"):
                return

    def cancel(self, job: str) -> Dict:
        return self._roundtrip({"op": "cancel", "job": job})

    def health(self) -> Dict:
        return self._roundtrip({"op": "health"})

    def drain(self) -> Dict:
        return self._roundtrip({"op": "drain"})

    # -- conveniences ---------------------------------------------------------

    def wait_ready(
        self, timeout: float = 30.0, interval: float = 0.05
    ) -> Dict:
        """Poll ``health`` until the server answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceUnavailable:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    def submit_with_retry(
        self,
        workload: str,
        attempts: int = 20,
        **fields,
    ) -> Dict:
        """Submit, honoring ``retry_after`` on retryable rejections.

        Connection-level failures (ECONNREFUSED, resets) are retried at
        the transport layer with capped exponential backoff and
        deterministic jitter, bounded by the client's
        ``connect_timeout`` budget; once that budget is spent
        :class:`ServiceUnavailable` propagates.
        """
        last: Dict = {}
        for _ in range(attempts):
            last = self.submit(workload, **fields)
            if last.get("ok") or last.get("error") not in protocol.RETRYABLE:
                return last
            time.sleep(float(last.get("retry_after", 0.05)))
        return last
