"""The campaign service's wire protocol (JSON lines over a socket).

One request per line, one response per line -- except a streaming
``result`` request, which emits a ``{"event": "run", ...}`` line per
completed run followed by a final ``{"event": "result", "final": true}``
line.  Messages are canonical JSON (sorted keys, no whitespace), UTF-8,
newline-terminated, so the protocol is trivially scriptable with ``nc``
and ``jq`` and every response is byte-deterministic for a given state.

Requests carry an ``op`` plus op-specific fields; an optional ``id`` is
echoed back verbatim on every response line so clients may multiplex.
Error responses are ``{"ok": false, "error": <code>, ...}``; rejections
that the client should retry (backpressure, quotas, draining) carry a
deterministic ``retry_after`` seconds hint.

Ops:

``submit``   tenant?, workload, runs?, seed?, scale?,
             switch_probability?, deadline_s?  ->  job id + state
``status``   job                               ->  state snapshot
``result``   job, stream?, timeout_s?          ->  report (+ run events)
``cancel``   job                               ->  resulting state
``health``   --                                ->  queue/tenant/job stats
``drain``    --                                ->  pending jobs; server
                                                   begins graceful drain

Worker-pool ops (spoken by ``cord-worker`` processes; same JSON-lines
framing, one connection per request so liveness is carried by
heartbeats, not sockets):

``worker_register``    name?, pid?, host?       ->  worker id + knobs
``worker_heartbeat``   worker                   ->  server state
``worker_lease``       worker                   ->  a stage task lease,
                                                    or ``idle: true``
``worker_complete``    worker, lease, epoch,
                       value (framed blob)      ->  accepted/duplicate
``worker_fail``        worker, lease, epoch,
                       detail                   ->  task requeued
``worker_deregister``  worker                   ->  released lease count
``repl_pull``          kind, namespace,
                       components               ->  sha256-framed entry
``repl_push``          kind, namespace,
                       components, data, sha256 ->  stored/duplicate

See ``docs/service.md`` for the full tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.workloads.registry import workload_names

#: Protocol schema version, reported by ``health``.  Version 2 added the
#: worker-pool and store-replication ops (all version-1 ops unchanged).
PROTOCOL_VERSION = 2

#: Every operation the server understands.
OPS = (
    "submit", "status", "result", "cancel", "health", "drain",
    "worker_register", "worker_heartbeat", "worker_lease",
    "worker_complete", "worker_fail", "worker_deregister",
    "repl_pull", "repl_push",
)

# -- error codes --------------------------------------------------------------

#: Malformed request (bad JSON, missing/invalid fields).
ERR_BAD_REQUEST = "bad_request"
#: ``op`` is not one of :data:`OPS`.
ERR_UNKNOWN_OP = "unknown_op"
#: Submission rejected: the bounded job queue is full (retryable).
ERR_QUEUE_FULL = "queue_full"
#: Submission rejected: the tenant's concurrency quota is spent (retryable).
ERR_TENANT_OVER_QUOTA = "tenant_over_quota"
#: Submission rejected: the server is draining and admits nothing (retryable
#: against the restarted server).
ERR_DRAINING = "draining"
#: ``job`` names no job this server knows.
ERR_UNKNOWN_JOB = "unknown_job"
#: The job failed; ``detail`` carries the error taxonomy code/message.
ERR_JOB_FAILED = "job_failed"
#: The job was cancelled (explicitly or by its deadline).
ERR_CANCELLED = "cancelled"
#: The job's per-job deadline expired before it finished.
ERR_DEADLINE = "deadline_exceeded"
#: A ``result`` request's ``timeout_s`` expired with the job still in
#: flight (retryable; the job keeps running).
ERR_PENDING = "pending"
#: ``worker`` names no registered (live) worker -- the worker was
#: declared dead or the server restarted; the worker must re-register.
ERR_UNKNOWN_WORKER = "unknown_worker"
#: ``lease`` names no outstanding lease (already completed, reassigned
#: and completed elsewhere, or expired past its run).
ERR_UNKNOWN_LEASE = "unknown_lease"
#: A replicated payload failed its sha256 check on receipt; the sender
#: should re-encode and retry (the receiver quarantined the bytes).
ERR_REPLICA_CORRUPT = "replica_corrupt"
#: A ``repl_pull`` named an entry the server store does not hold.
ERR_NOT_FOUND = "not_found"

#: Errors whose response carries a ``retry_after`` hint.
RETRYABLE = (ERR_QUEUE_FULL, ERR_TENANT_OVER_QUOTA, ERR_DRAINING,
             ERR_PENDING)


class ProtocolError(ValueError):
    """A malformed or invalid request (mapped to ``bad_request``)."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One canonical-JSON protocol line (newline-terminated)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; :class:`ProtocolError` on anything odd."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("undecodable message: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError(
            "message must be a JSON object, got %s" % type(message).__name__
        )
    return message


def ok_response(op: str, request_id=None, **fields) -> Dict[str, Any]:
    response = {"ok": True, "op": op}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error_response(
    code: str,
    detail: str = "",
    request_id=None,
    retry_after: Optional[float] = None,
    **fields,
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": False, "error": code}
    if detail:
        response["detail"] = detail
    if request_id is not None:
        response["id"] = request_id
    if retry_after is not None:
        response["retry_after"] = retry_after
    response.update(fields)
    return response


def _field(message: Dict, name: str, kind, default, required: bool):
    value = message.get(name, None)
    if value is None:
        if required:
            raise ProtocolError("missing required field %r" % name)
        return default
    if kind is float and isinstance(value, int) \
            and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProtocolError(
            "field %r must be %s, got %r" % (name, kind.__name__, value)
        )
    return value


def validate_submit(message: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a ``submit`` request's fields; raise on invalid ones.

    Returns plain spec fields (the server builds its
    :class:`~repro.service.jobs.CampaignSpec` from them), with the same
    defaults as ``cord-repro inject``: 10 runs, base seed 2006 (the
    campaign default), scale 1.0 -- so an argument-free submission and
    the bare CLI invocation name the identical campaign.
    """
    workload = _field(message, "workload", str, None, required=True)
    if workload not in workload_names():
        raise ProtocolError(
            "unknown workload %r (choices: %s)"
            % (workload, ", ".join(workload_names()))
        )
    runs = _field(message, "runs", int, 10, required=False)
    if runs < 1:
        raise ProtocolError("runs must be >= 1, got %d" % runs)
    seed = _field(message, "seed", int, 2006, required=False)
    scale = _field(message, "scale", float, 1.0, required=False)
    if scale <= 0:
        raise ProtocolError("scale must be > 0, got %r" % scale)
    switch_probability = _field(
        message, "switch_probability", float, 0.1, required=False
    )
    if not 0.0 <= switch_probability <= 1.0:
        raise ProtocolError(
            "switch_probability must be in [0, 1], got %r"
            % switch_probability
        )
    tenant = _field(message, "tenant", str, "default", required=False)
    if not tenant:
        raise ProtocolError("tenant must be a non-empty string")
    deadline_s = _field(message, "deadline_s", float, None, required=False)
    if deadline_s is not None and deadline_s <= 0:
        raise ProtocolError("deadline_s must be > 0, got %r" % deadline_s)
    return {
        "workload": workload,
        "runs": runs,
        "seed": seed,
        "scale": scale,
        "switch_probability": switch_probability,
        "tenant": tenant,
        "deadline_s": deadline_s,
    }
