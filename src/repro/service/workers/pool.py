"""The server-side worker pool: liveness, leases, failover, fallback.

One :class:`WorkerPool` lives inside a
:class:`~repro.service.server.CampaignServer` and bridges two worlds:
executor threads running :func:`~repro.service.executor.execute_job`
park their stage tasks here (:meth:`WorkerPool.run_tasks`), and the
asyncio protocol loop feeds in worker ops (register / heartbeat / lease
/ complete / fail / deregister).  All state sits behind one condition
variable; every pool operation is a short critical section, so the
asyncio loop never blocks on campaign work.

Robustness model
----------------

*Liveness is heartbeat-based, not connection-based.*  Workers speak
connection-per-request, so a flapping link costs nothing; a worker is
``live`` while it heartbeats, ``suspect`` after ~2 missed beats, and
``dead`` after ``miss_threshold`` intervals of silence -- at which point
every lease it held is reassigned.

*Leases carry deadlines and epochs.*  A lease that outlives
``lease_s`` is expired and its task requeued with a bumped epoch; the
WAL records every grant/expiry/completion (``type: "lease"`` records,
transparent to job replay).  Reassignment is at-least-once by design:
stage tasks are deterministic and store-keyed, so executing a shard
twice produces identical bytes.  The *first* completion of a task wins
-- a late completion from a stalled worker is accepted if the task is
still open (counted ``stale_completions``) and deduped if it is not
(counted ``duplicate_completions``); nothing is ever double-committed.

*Zero workers means local execution.*  :meth:`run_tasks` runs pending
tasks on the calling executor thread whenever no live worker is
attached -- at job start (the server degrades to exactly the single-host
path, no API change) or mid-job (every worker died; the job still
finishes).  ``health`` reports the degradation.
"""

from __future__ import annotations

import itertools
import os
import re
import threading
import time
from collections import Counter, OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional, Tuple

HEARTBEAT_ENV = "REPRO_SVC_HEARTBEAT_S"
MISS_ENV = "REPRO_SVC_HEARTBEAT_MISSES"
LEASE_ENV = "REPRO_SVC_LEASE_S"
POLL_ENV = "REPRO_SVC_WORKER_POLL_S"

_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")

#: How long :meth:`WorkerPool.run_tasks` sleeps between wake-ups when it
#: has nothing to do (a backstop -- completions notify the condition).
_WAIT_S = 0.05

#: Consecutive remote failures of one task before the job is failed
#: rather than requeued forever.
_MAX_TASK_FAILURES = 3


class UnknownWorker(KeyError):
    """The worker id names no live worker (dead, or server restarted)."""


class UnknownLease(KeyError):
    """The lease id names no open or retired lease."""


class RemoteTaskError(RuntimeError):
    """A stage task failed remotely more times than the requeue budget."""


def _env_float(name: str, default: float, floor: float) -> float:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(floor, float(raw))
        except ValueError:
            pass
    return default


def _env_int(name: str, default: int, floor: int) -> int:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            return max(floor, int(raw))
        except ValueError:
            pass
    return default


class PoolLimits:
    """Worker-pool knobs (all environment-overridable)."""

    def __init__(
        self,
        heartbeat_s: float = 2.0,
        miss_threshold: int = 5,
        lease_s: float = 120.0,
        poll_s: float = 0.25,
    ):
        self.heartbeat_s = heartbeat_s
        self.miss_threshold = miss_threshold
        self.lease_s = lease_s
        self.poll_s = poll_s

    @classmethod
    def from_env(cls) -> "PoolLimits":
        return cls(
            heartbeat_s=_env_float(HEARTBEAT_ENV, 2.0, 0.01),
            miss_threshold=_env_int(MISS_ENV, 5, 2),
            lease_s=_env_float(LEASE_ENV, 120.0, 0.05),
            poll_s=_env_float(POLL_ENV, 0.25, 0.01),
        )

    def as_fields(self) -> Dict[str, Any]:
        return {
            "heartbeat_s": self.heartbeat_s,
            "miss_threshold": self.miss_threshold,
            "lease_s": self.lease_s,
            "poll_s": self.poll_s,
        }


class _Worker:
    __slots__ = ("worker_id", "name", "pid", "host", "state",
                 "last_seen", "leases", "completed")

    def __init__(self, worker_id: str, name: str, pid: int, host: str,
                 now: float):
        self.worker_id = worker_id
        self.name = name
        self.pid = pid
        self.host = host
        self.state = "live"
        self.last_seen = now
        self.leases: set = set()
        self.completed = 0


class _Lease:
    __slots__ = ("lease_id", "worker_id", "job_id", "task", "epoch",
                 "granted_at", "expires_at")

    def __init__(self, lease_id: str, worker_id: str, job_id: str,
                 task: str, epoch: int, now: float, lease_s: float):
        self.lease_id = lease_id
        self.worker_id = worker_id
        self.job_id = job_id
        self.task = task
        self.epoch = epoch
        self.granted_at = now
        self.expires_at = now + lease_s


class _Run:
    """One executing job's task set (owned by its executor thread)."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        self.tasks: Dict[str, Any] = {}
        self.pending: deque = deque()
        self.epochs: Dict[str, int] = {}
        self.done: Dict[str, Any] = {}
        self.completions: deque = deque()
        self.failures: Counter = Counter()
        self.error: Optional[str] = None
        self.cancelled = False
        self.stats: Counter = Counter()

    def add(self, name: str, payload: Any) -> None:
        self.tasks[name] = payload
        self.pending.append(name)

    def finished(self) -> bool:
        return (bool(self.tasks)
                and len(self.done) == len(self.tasks)
                and not self.completions)


class WorkerPool:
    """Registry + lease scheduler for remote ``cord-worker`` processes.

    ``lease_log`` (optional) is called with one JSON-safe dict per lease
    event -- the server wires it to the job WAL so lease epochs are
    replayable; ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        limits: Optional[PoolLimits] = None,
        lease_log: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.limits = limits or PoolLimits.from_env()
        self._lease_log = lease_log
        self._clock = clock
        self._cond = threading.Condition(threading.RLock())
        self._workers: "OrderedDict[str, _Worker]" = OrderedDict()
        self._leases: Dict[str, _Lease] = {}
        self._retired: Dict[str, _Lease] = {}
        self._runs: "OrderedDict[str, _Run]" = OrderedDict()
        self._next_worker = itertools.count(1)
        self._next_lease = itertools.count(1)
        self._rr = 0
        self.stats: Counter = Counter()
        self.draining = False

    # -- worker lifecycle -----------------------------------------------------

    def register(self, name: str = "", pid: int = 0,
                 host: str = "") -> Dict[str, Any]:
        """Attach a worker; returns its id plus the pool's timing knobs."""
        with self._cond:
            suffix = _SAFE.sub("-", name)[:24].strip("-")
            worker_id = "wk%04d%s" % (
                next(self._next_worker), "-" + suffix if suffix else ""
            )
            self._workers[worker_id] = _Worker(
                worker_id, name, pid, host, self._clock()
            )
            self.stats["workers_registered"] += 1
            self._cond.notify_all()
            fields = {"worker": worker_id}
            fields.update(self.limits.as_fields())
            return fields

    def heartbeat(self, worker_id: str) -> Dict[str, Any]:
        with self._cond:
            worker = self._live(worker_id)
            worker.last_seen = self._clock()
            if worker.state == "suspect":
                worker.state = "live"
                self.stats["workers_recovered"] += 1
                self._cond.notify_all()
            return {
                "state": "draining" if self.draining else "serving",
                "leases": len(worker.leases),
            }

    def deregister(self, worker_id: str,
                   stats: Optional[Dict[str, int]] = None) -> int:
        """Graceful detach: requeue the worker's open leases, drop it."""
        with self._cond:
            worker = self._workers.pop(worker_id, None)
            if worker is None:
                raise UnknownWorker(worker_id)
            released = 0
            for lease_id in list(worker.leases):
                lease = self._leases.pop(lease_id, None)
                if lease is not None:
                    self._requeue(lease, "deregister")
                    released += 1
            self.stats["workers_deregistered"] += 1
            if isinstance(stats, dict):
                for key, value in stats.items():
                    if isinstance(value, int) and not isinstance(value, bool):
                        self.stats["agent_" + str(key)] += value
            self._cond.notify_all()
            return released

    def _live(self, worker_id: str) -> _Worker:
        worker = self._workers.get(worker_id)
        if worker is None or worker.state == "dead":
            raise UnknownWorker(worker_id)
        return worker

    # -- leases ---------------------------------------------------------------

    def lease(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Grant the next pending stage task, or ``None`` when idle.

        Round-robins across executing jobs so no campaign starves while
        another fans out.  A lease poll also refreshes liveness.
        """
        with self._cond:
            worker = self._live(worker_id)
            now = self._clock()
            worker.last_seen = now
            if worker.state == "suspect":
                worker.state = "live"
                self.stats["workers_recovered"] += 1
            if self.draining:
                return None
            runs = [run for run in self._runs.values()
                    if run.pending and not run.cancelled]
            if not runs:
                return None
            run = runs[self._rr % len(runs)]
            self._rr += 1
            task = run.pending.popleft()
            epoch = run.epochs.get(task, 0) + 1
            run.epochs[task] = epoch
            lease_id = "ls%06d" % next(self._next_lease)
            lease = _Lease(lease_id, worker_id, run.job_id, task, epoch,
                           now, self.limits.lease_s)
            self._leases[lease_id] = lease
            worker.leases.add(lease_id)
            self.stats["leases_granted"] += 1
            run.stats["leases_granted"] += 1
            self._log("grant", lease)
            return {
                "lease": lease_id,
                "job": run.job_id,
                "task": task,
                "epoch": epoch,
                "deadline_s": self.limits.lease_s,
                "payload": run.tasks[task],
            }

    def complete(self, worker_id: str, lease_id: str, epoch: int,
                 value: Any) -> Dict[str, Any]:
        """Commit a completion; first one wins, the rest are deduped.

        A completion against a retired (expired / reassigned) lease is
        still *accepted* when the task is open -- the value is
        deterministic, so adopting the stalled worker's result is both
        correct and cheaper than waiting for the replacement.  Once a
        task is done every further completion is a duplicate: counted,
        WAL-logged, and dropped.
        """
        with self._cond:
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.last_seen = self._clock()
            lease = self._leases.pop(lease_id, None)
            retired = lease is None
            if retired:
                lease = self._retired.pop(lease_id, None)
            if lease is None:
                self.stats["unknown_lease_completions"] += 1
                raise UnknownLease(lease_id)
            if worker is not None:
                worker.leases.discard(lease_id)
            run = self._runs.get(lease.job_id)
            if run is None or run.cancelled:
                self.stats["late_completions"] += 1
                raise UnknownLease(lease_id)
            if lease.task in run.done:
                self.stats["duplicate_completions"] += 1
                run.stats["duplicate_completions"] += 1
                self._log("duplicate", lease, worker=worker_id)
                return {"accepted": False, "duplicate": True}
            stale = retired or epoch != run.epochs.get(lease.task)
            if stale:
                self.stats["stale_completions"] += 1
                run.stats["stale_completions"] += 1
            # The task may have been requeued (lease expiry) but not yet
            # re-leased: pull it back out of the pending queue.
            try:
                run.pending.remove(lease.task)
            except ValueError:
                pass
            run.done[lease.task] = value
            run.completions.append(lease.task)
            if worker is not None:
                worker.completed += 1
            self.stats["remote_completions"] += 1
            run.stats["remote_completions"] += 1
            self._log("done", lease, worker=worker_id, stale=stale)
            self._cond.notify_all()
            return {"accepted": True, "duplicate": False}

    def fail(self, worker_id: str, lease_id: str, epoch: int,
             detail: str) -> Dict[str, Any]:
        """A worker could not execute its lease: requeue (bounded)."""
        with self._cond:
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.last_seen = self._clock()
                worker.leases.discard(lease_id)
            lease = self._leases.pop(lease_id, None) \
                or self._retired.pop(lease_id, None)
            if lease is None:
                raise UnknownLease(lease_id)
            run = self._runs.get(lease.job_id)
            self.stats["task_failures"] += 1
            if run is None or run.cancelled or lease.task in run.done:
                return {"requeued": False}
            run.failures[lease.task] += 1
            run.stats["task_failures"] += 1
            if run.failures[lease.task] >= _MAX_TASK_FAILURES:
                run.error = "task %s failed %d times remotely: %s" % (
                    lease.task, run.failures[lease.task], detail
                )
                self._cond.notify_all()
                return {"requeued": False}
            self._requeue(lease, "fail")
            self._cond.notify_all()
            return {"requeued": True}

    def _requeue(self, lease: _Lease, why: str) -> None:
        run = self._runs.get(lease.job_id)
        if run is None or run.cancelled or lease.task in run.done:
            return
        if lease.task not in run.pending:
            run.pending.append(lease.task)
        self.stats["tasks_requeued"] += 1
        run.stats["tasks_requeued"] += 1
        self._log("requeue", lease, why=why)

    # -- liveness / deadline scan ---------------------------------------------

    def scan(self, now: Optional[float] = None) -> None:
        """Advance liveness states and expire overdue leases.

        The server calls this on a timer; :meth:`run_tasks` also calls
        it while waiting, so deadlines hold even without the timer (the
        unit-test configuration).
        """
        with self._cond:
            if now is None:
                now = self._clock()
            changed = False
            heartbeat = self.limits.heartbeat_s
            for worker in list(self._workers.values()):
                if worker.state == "dead":
                    continue
                age = now - worker.last_seen
                if age > heartbeat * self.limits.miss_threshold:
                    worker.state = "dead"
                    self.stats["workers_lost"] += 1
                    changed = True
                    for lease_id in list(worker.leases):
                        lease = self._leases.pop(lease_id, None)
                        worker.leases.discard(lease_id)
                        if lease is not None:
                            self._retired[lease_id] = lease
                            self._requeue(lease, "worker_lost")
                elif age > heartbeat * 2:
                    if worker.state != "suspect":
                        worker.state = "suspect"
                        self.stats["workers_suspected"] += 1
                        changed = True
            for lease_id, lease in list(self._leases.items()):
                if now > lease.expires_at:
                    del self._leases[lease_id]
                    worker = self._workers.get(lease.worker_id)
                    if worker is not None:
                        worker.leases.discard(lease_id)
                    self._retired[lease_id] = lease
                    self.stats["leases_expired"] += 1
                    run = self._runs.get(lease.job_id)
                    if run is not None:
                        run.stats["leases_expired"] += 1
                    self._log("expire", lease)
                    self._requeue(lease, "deadline")
                    changed = True
            if changed:
                self._cond.notify_all()

    def live_worker_count(self) -> int:
        """Workers currently able to take leases (live or suspect)."""
        with self._cond:
            return self._live_count_locked()

    def _live_count_locked(self) -> int:
        return sum(1 for worker in self._workers.values()
                   if worker.state in ("live", "suspect"))

    # -- the executor-side entry point -----------------------------------------

    def run_tasks(
        self,
        job_id: str,
        tasks: List[Tuple[str, Any]],
        run_local: Callable[[Any], Any],
        on_result: Optional[Callable[..., None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[Dict[str, Any], Dict[str, int], bool]:
        """Park stage tasks for workers; fall back to local execution.

        Called on the job's executor thread and blocks until every task
        (including ones submitted by ``on_result(name, value, submit)``)
        has a committed value, the stop predicate trips, or a task
        exhausts its remote failure budget (:class:`RemoteTaskError`).
        Returns ``(values, stats, interrupted)``.
        """
        should_stop = should_stop or (lambda: False)
        run = _Run(job_id)
        values: Dict[str, Any] = {}
        processed: set = set()
        interrupted = False

        def submit(name: str, payload: Any) -> None:
            run.add(name, payload)
            self._cond.notify_all()

        self._cond.acquire()
        try:
            self._runs[job_id] = run
            for name, payload in tasks:
                run.add(name, payload)
            self._cond.notify_all()
            while True:
                if should_stop():
                    run.cancelled = True
                    interrupted = True
                    break
                if run.error is not None:
                    run.cancelled = True
                    raise RemoteTaskError(run.error)
                progressed = False
                while run.completions:
                    name = run.completions.popleft()
                    if name in processed:
                        continue
                    processed.add(name)
                    values[name] = run.done[name]
                    if on_result is not None:
                        on_result(name, run.done[name], submit)
                    progressed = True
                if run.finished():
                    break
                if progressed:
                    continue
                if run.pending and not self._live_count_locked():
                    self._run_one_locally(run, run_local)
                    continue
                self.scan()
                self._cond.wait(timeout=_WAIT_S)
        finally:
            self._drop_run(job_id)
            self._cond.release()
        return values, dict(run.stats), interrupted

    def _run_one_locally(self, run: _Run, run_local) -> None:
        """Execute one pending task on the calling thread (lock held).

        The lock is dropped around the stage body so workers can attach,
        heartbeat, and complete other tasks while local execution grinds;
        commitment afterwards goes through the same first-wins path as a
        remote completion.
        """
        task = run.pending.popleft()
        epoch = run.epochs.get(task, 0) + 1
        run.epochs[task] = epoch
        lease = _Lease("local", "local", run.job_id, task, epoch,
                       self._clock(), self.limits.lease_s)
        self._log("grant", lease)
        payload = run.tasks[task]
        self._cond.release()
        try:
            value = run_local(payload)
        finally:
            self._cond.acquire()
        if task in run.done:
            self.stats["duplicate_completions"] += 1
            run.stats["duplicate_completions"] += 1
            self._log("duplicate", lease)
            return
        run.done[task] = value
        run.completions.append(task)
        self.stats["local_completions"] += 1
        run.stats["local_completions"] += 1
        self._log("done", lease, stale=False)

    def _drop_run(self, job_id: str) -> None:
        self._runs.pop(job_id, None)
        for lease_id, lease in list(self._leases.items()):
            if lease.job_id == job_id:
                del self._leases[lease_id]
                worker = self._workers.get(lease.worker_id)
                if worker is not None:
                    worker.leases.discard(lease_id)
        for lease_id, lease in list(self._retired.items()):
            if lease.job_id == job_id:
                del self._retired[lease_id]

    # -- administrivia ---------------------------------------------------------

    def drain(self) -> None:
        """Stop granting leases (outstanding ones may still complete)."""
        with self._cond:
            self.draining = True
            self._cond.notify_all()

    def health(self) -> Dict[str, Any]:
        """The worker-pool section of the server's ``health`` response."""
        with self._cond:
            counts = Counter(w.state for w in self._workers.values())
            live = self._live_count_locked()
            return {
                "mode": "distributed" if live else "local",
                "attached": len(self._workers),
                "live": counts.get("live", 0),
                "suspect": counts.get("suspect", 0),
                "dead": counts.get("dead", 0),
                "outstanding_leases": len(self._leases),
                "limits": self.limits.as_fields(),
                "stats": {key: int(value)
                          for key, value in sorted(self.stats.items())},
                "workers": [
                    {
                        "worker": w.worker_id,
                        "name": w.name,
                        "pid": w.pid,
                        "host": w.host,
                        "state": w.state,
                        "leases": len(w.leases),
                        "completed": w.completed,
                    }
                    for w in self._workers.values()
                ],
            }

    def _log(self, event: str, lease: _Lease, **extra: Any) -> None:
        if self._lease_log is None:
            return
        record = {
            "type": "lease",
            "event": event,
            "job": lease.job_id,
            "task": lease.task,
            "epoch": lease.epoch,
            "worker": lease.worker_id,
        }
        record.update(extra)
        try:
            self._lease_log(record)
        except Exception:  # pragma: no cover - WAL trouble must not wedge
            self.stats["lease_log_errors"] += 1
