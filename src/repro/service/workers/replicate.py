"""Store replication: ship content-addressed entries between hosts.

Workers have no shared filesystem with the server, so trace entries
(``CORDRUN3`` run containers), sizing values, and outcome bundles move
over the wire as the *exact framed bytes* the store keeps on disk:
``CORDSTOR1`` magic + length + sha256 + payload (see
:mod:`repro.trace.store`).  Because store paths are a pure function of
``(kind, namespace, components)``, the receiver lands the bytes at the
identical relative path -- replication is a byte-for-byte copy of the
single-host cache, which is what keeps multi-host reports byte-identical
to ``cord-repro inject``.

Integrity is verified twice on receipt: an outer sha256 over the whole
framed blob (computed fresh by the sender, catching in-flight damage),
then the frame's own embedded digest when the entry is installed.  A
mismatch quarantines the damaged bytes (reusing the store's quarantine
directory and counters) and raises :class:`ReplicaIntegrityError`; the
sender re-encodes and retries.  The ``replica_corrupt`` chaos fault
flips one byte of the next decoded payload, proving that path end to
end.

Stage-task payloads and completion values are not JSON (they carry
:class:`~repro.workloads.base.WorkloadParams` and
:class:`~repro.injection.campaign.RunResult` objects), so they travel as
pickles wrapped in the same frame -- same verification, same quarantine
semantics.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import StoreCorruptError
from repro.resilience import faults
from repro.resilience.checkpoint import atomic_write_bytes
from repro.trace.store import (
    PackedTraceStore,
    frame_payload,
    unframe_payload,
)

#: Wire ``kind`` -> on-disk store entry kind.
ENTRY_KINDS = {"run": "trace", "value": "value"}


class ReplicaIntegrityError(StoreCorruptError):
    """A replicated payload failed its sha256 check on receipt."""


def encode_blob(framed: bytes) -> Dict[str, Any]:
    """Wire fields for one framed blob (base64 + outer sha256 + size)."""
    return {
        "data": base64.b64encode(framed).decode("ascii"),
        "sha256": hashlib.sha256(framed).hexdigest(),
        "n": len(framed),
    }


def decode_blob(fields: Dict[str, Any], what: str) -> bytes:
    """Verify and return the framed bytes of one wire blob.

    Raises :class:`ReplicaIntegrityError` when the outer digest does not
    match -- including when the ``replica_corrupt`` chaos fault flips a
    byte in flight (tick-gated, one tick per decoded transfer, so the
    fault matrix can corrupt each successive transfer in turn).
    """
    data = fields.get("data")
    digest = fields.get("sha256")
    if not isinstance(data, str) or not isinstance(digest, str):
        raise ReplicaIntegrityError("%s: malformed replication blob" % what)
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ReplicaIntegrityError("%s: undecodable payload: %s"
                                    % (what, exc))
    if faults.active() and raw and faults.tick("replica_corrupt"):
        flipped = bytearray(raw)
        flipped[len(flipped) // 2] ^= 0xFF
        raw = bytes(flipped)
    if hashlib.sha256(raw).hexdigest() != digest:
        raise ReplicaIntegrityError(
            "%s: sha256 mismatch on receipt (%d bytes)" % (what, len(raw))
        )
    return raw


def pickle_blob(value: Any) -> Dict[str, Any]:
    """Frame and encode a picklable value for the wire."""
    return encode_blob(
        frame_payload(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    )


def unpickle_blob(fields: Dict[str, Any], what: str) -> Any:
    """Decode, verify (outer digest + frame digest) and unpickle."""
    raw = decode_blob(fields, what)
    try:
        payload = unframe_payload(raw, what)
    except StoreCorruptError as exc:
        raise ReplicaIntegrityError(str(exc))
    return pickle.loads(payload)


def components_to_wire(components: Tuple) -> list:
    """Store-key components as JSON (tuples become lists)."""
    return [
        components_to_wire(item) if isinstance(item, (tuple, list)) else item
        for item in components
    ]


def components_from_wire(value) -> Tuple:
    """Invert :func:`components_to_wire`.

    Store digests hash the ``repr`` of the key tuple, and
    ``repr([1, 2]) != repr((1, 2))`` -- so every JSON list must become a
    tuple again before touching a store path.
    """
    if not isinstance(value, (list, tuple)):
        raise ValueError("components must be a list, got %r" % (value,))
    return tuple(
        components_from_wire(item) if isinstance(item, (list, tuple))
        else item
        for item in value
    )


# -- store-side install/read -------------------------------------------------


def read_entry(store: PackedTraceStore, kind: str, namespace: str,
               components: Tuple) -> Optional[bytes]:
    """The raw framed on-disk bytes of one entry, or ``None``."""
    path = store.entry_path(kind, namespace, components)
    try:
        return path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError:
        store.stats["io_errors"] += 1
        return None


def install_entry(store: PackedTraceStore, kind: str, namespace: str,
                  components: Tuple, raw: bytes) -> bool:
    """Land verified framed bytes in the store; ``True`` if newly stored.

    The frame's embedded sha256 is checked before anything touches disk;
    corrupt bytes are quarantined (kept for post-mortem, counted in
    ``stats['quarantined']``) and :class:`ReplicaIntegrityError` raised.
    Installation is idempotent: an entry that already exists is left
    untouched (first writer wins -- entries are content-addressed, so a
    duplicate push carries identical bytes anyway).
    """
    path = store.entry_path(kind, namespace, components)
    try:
        unframe_payload(raw, "replicated %s" % path.name)
    except StoreCorruptError as exc:
        store.quarantine_bytes(path.name, raw, exc)
        raise ReplicaIntegrityError(str(exc))
    if path.exists():
        return False
    atomic_write_bytes(path, raw)
    return True


# -- worker-side pull/push ---------------------------------------------------


def pull_entry(call, store: PackedTraceStore, kind: str, namespace: str,
               components: Tuple, attempts: int = 3) -> bool:
    """Fetch one entry from the server into the local store.

    ``call`` is a transport callable (``message -> reply dict``) that may
    raise :class:`~repro.service.client.ServiceUnavailable`; those
    propagate (the worker's lease loop owns reconnect policy).  Returns
    ``True`` when the entry is present locally afterwards.  A corrupt
    transfer is quarantined and re-fetched up to ``attempts`` times; a
    ``not_found`` reply returns ``False`` (the caller re-records
    deterministically -- never an error).
    """
    if store.entry_path(kind, namespace, components).exists():
        return True
    wire_kind = _wire_kind(kind)
    message = {
        "op": "repl_pull", "kind": wire_kind, "namespace": namespace,
        "components": components_to_wire(components),
    }
    name = store.entry_path(kind, namespace, components).name
    for _attempt in range(max(1, attempts)):
        reply = call(message)
        if not reply.get("ok"):
            return False
        try:
            raw = decode_blob(reply, "pulled %s entry" % wire_kind)
        except ReplicaIntegrityError as exc:
            store.quarantine_bytes(name, raw_bytes(reply), exc)
            continue
        try:
            install_entry(store, kind, namespace, components, raw)
        except ReplicaIntegrityError:
            continue
        return True
    return False


def push_entry(call, store: PackedTraceStore, kind: str, namespace: str,
               components: Tuple, attempts: int = 3) -> bool:
    """Replicate one local entry to the server; ``True`` on success.

    A ``replica_corrupt`` rejection (the server quarantined a damaged
    transfer) re-encodes and retries up to ``attempts`` times; any other
    rejection gives up (the entry stays local; the server can always
    re-derive it deterministically).
    """
    raw = read_entry(store, kind, namespace, components)
    if raw is None:
        return False
    message = {
        "op": "repl_push", "kind": _wire_kind(kind), "namespace": namespace,
        "components": components_to_wire(components),
    }
    message.update(encode_blob(raw))
    for _attempt in range(max(1, attempts)):
        reply = call(message)
        if reply.get("ok"):
            return True
        if reply.get("error") != "replica_corrupt":
            return False
    return False


def raw_bytes(fields: Dict[str, Any]) -> bytes:
    """Best-effort bytes of a message's payload, for quarantine dumps."""
    try:
        return base64.b64decode(str(fields.get("data", "")).encode("ascii"))
    except (ValueError, UnicodeEncodeError):
        return b""


def _wire_kind(kind: str) -> str:
    for wire, disk in ENTRY_KINDS.items():
        if disk == kind:
            return wire
    raise ValueError("unknown store entry kind %r" % (kind,))
