"""Multi-host worker pools for the campaign service.

The record-once / analyze-many split means a campaign's stage tasks
(sizing, record, analyze -- :mod:`repro.experiments.pipeline`) are pure
functions of their payload plus a content-addressed store, so they can
execute *anywhere*: this package adds the distributed tier that lets a
fleet of ``cord-worker`` processes, with no shared filesystem, lease
those tasks from one ``cord-serve`` instance over the existing
JSON-lines protocol and replicate the trace entries they need.

Layout:

``pool``
    The server-side :class:`~repro.service.workers.pool.WorkerPool`:
    worker registry with heartbeat-based liveness, lease bookkeeping
    with per-lease deadlines and epoch-tracked reassignment, duplicate
    completion dedup, and the local-execution fallback that makes a
    zero-worker server behave exactly like single-host ``cord-serve``.

``remote``
    The ``cord-worker`` agent process: registration with capped
    exponential backoff + deterministic jitter, a heartbeat thread,
    the lease/execute/replicate/complete loop, SIGTERM drain
    (finish lease -> deregister -> exit 0), and the worker-side chaos
    fault points (``worker_vanish``, ``lease_stall``,
    ``net_partition``).

``replicate``
    The store-replication codec: sha256-framed payloads (reusing the
    ``CORDSTOR1`` framing from :mod:`repro.trace.store`), pull/push
    helpers, and quarantine-on-mismatch handling (``replica_corrupt``).
"""

from repro.service.workers.pool import (  # noqa: F401
    PoolLimits,
    RemoteTaskError,
    UnknownLease,
    UnknownWorker,
    WorkerPool,
)
