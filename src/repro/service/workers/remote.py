"""``cord-worker``: a remote execution agent for the campaign service.

One agent process attaches to a ``cord-serve`` instance, leases stage
tasks (sizing / record / analyze -- the same
:func:`~repro.experiments.pipeline.run_stage_task` payloads the
in-process scheduler uses), executes them against its *own* local trace
store, replicates the artifacts it produced (and fetches the ones it
needs) through the store-replication ops, and streams completions back.

The transport is connection-per-request, so the agent's identity is its
``worker`` id, not a socket: a flapped link or a restarted server costs
a few retries, never a lost worker.  Liveness is maintained by a
background heartbeat thread; when the server declares the worker dead
(``unknown_worker``), it simply re-registers.  All reconnect paths use
capped exponential backoff with deterministic jitter
(:func:`~repro.service.client.connect_backoff`).

Shutdown semantics: SIGTERM requests a drain -- the agent finishes the
lease it holds (if any), pushes its artifacts, completes, deregisters,
and exits 0.  A server-initiated drain observed via heartbeat or lease
responses does the same.  The chaos faults ``worker_vanish`` (hard exit,
code 90), ``lease_stall`` (sleep past the lease deadline), and
``net_partition`` (a window of failed requests) are tick-gated at the
lease-lifecycle transitions ``granted`` -> ``executed`` -> ``pushed`` ->
``completed``, which is what lets the multi-host fault matrix kill or
freeze a worker at every stage of a lease in turn.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket as socketlib
import sys
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments import pipeline
from repro.injection.campaign import CampaignConfig, detectors_digest
from repro.resilience import faults
from repro.service import protocol
from repro.service.client import (
    ServiceClient,
    ServiceUnavailable,
    connect_backoff,
)
from repro.service.workers import replicate
from repro.trace.store import PackedTraceStore
from repro.workloads.registry import get_workload

#: How long a completion keeps retrying through a partition before the
#: lease is abandoned (the server will have reassigned it anyway).
_COMPLETE_GIVE_UP_S = 30.0


class WorkerAgent:
    """The lease/execute/replicate/complete loop of one worker process."""

    def __init__(
        self,
        root,
        socket_path=None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        name: str = "",
        poll_s: Optional[float] = None,
        connect_timeout: float = 10.0,
        timeout: float = 120.0,
    ):
        self.client = ServiceClient(
            socket_path=socket_path, host=host, port=port,
            timeout=timeout, connect_timeout=connect_timeout,
        )
        self.root = Path(root)
        self.store = PackedTraceStore(self.root / "traces")
        self.name = name or "worker-%d" % os.getpid()
        self.connect_timeout = max(0.0, connect_timeout)
        self.stats: Counter = Counter()
        self.worker_id: Optional[str] = None
        self.heartbeat_s = 2.0
        self.poll_s = poll_s if poll_s is not None else 0.25
        self._poll_fixed = poll_s is not None
        self._draining = threading.Event()
        self._server_draining = threading.Event()
        self._reregister = threading.Event()
        self._hb_stop = threading.Event()
        self._lock = threading.Lock()
        self._partition_left = 0

    # -- transport -------------------------------------------------------------

    def _call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response, subject to the ``net_partition`` window."""
        with self._lock:
            if self._partition_left > 0:
                self._partition_left -= 1
                self.stats["partition_drops"] += 1
                raise ServiceUnavailable("injected net_partition")
        return self.client.call(message)

    def _backoff_sleep(self, attempt: int) -> None:
        time.sleep(connect_backoff(self.name, attempt))

    # -- chaos -----------------------------------------------------------------

    def _chaos(self, transition: str) -> None:
        """The worker-side fault hook, one tick per lease transition."""
        if not faults.active():
            return
        if faults.tick("worker_vanish"):
            sys.stderr.write(
                "cord-worker %s: worker_vanish at %s\n"
                % (self.name, transition)
            )
            sys.stderr.flush()
            os._exit(faults.WORKER_VANISH_EXIT_CODE)
        if faults.tick("lease_stall"):
            self.stats["stalls"] += 1
            time.sleep(faults.stall_seconds())
        if faults.tick("net_partition"):
            with self._lock:
                self._partition_left = faults.partition_requests()
            self.stats["partitions"] += 1

    # -- registration / heartbeats ---------------------------------------------

    def _register(self) -> bool:
        attempt = 0
        while not self._draining.is_set():
            try:
                reply = self._call({
                    "op": "worker_register",
                    "name": self.name,
                    "pid": os.getpid(),
                    "host": socketlib.gethostname(),
                })
            except ServiceUnavailable:
                self._backoff_sleep(attempt)
                attempt += 1
                continue
            if reply.get("ok"):
                self.worker_id = reply["worker"]
                self.heartbeat_s = float(
                    reply.get("heartbeat_s", self.heartbeat_s)
                )
                if not self._poll_fixed:
                    self.poll_s = float(reply.get("poll_s", self.poll_s))
                self.stats["registrations"] += 1
                return True
            if reply.get("error") == protocol.ERR_DRAINING:
                self._server_draining.set()
                return False
            time.sleep(float(reply.get("retry_after", 0.2)))
        return False

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.heartbeat_s):
            worker_id = self.worker_id
            if worker_id is None:
                continue
            try:
                reply = self._call({
                    "op": "worker_heartbeat", "worker": worker_id,
                })
            except ServiceUnavailable:
                self.stats["heartbeat_misses"] += 1
                continue
            if reply.get("ok"):
                if reply.get("state") == "draining":
                    self._server_draining.set()
            elif reply.get("error") == protocol.ERR_UNKNOWN_WORKER:
                self._reregister.set()

    # -- the lease loop --------------------------------------------------------

    def run(self) -> int:
        """Serve until drained; returns the process exit code (0)."""
        self._install_signal_handlers()
        if not self._register():
            self._summary("never registered")
            return 0
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="heartbeat", daemon=True
        )
        heartbeat.start()
        attempt = 0
        lost_since: Optional[float] = None
        # A registered worker that cannot reach the server for a full
        # connect budget concludes the server is gone and drains out
        # (exit 0) instead of retrying forever.  Each failed call has
        # already burned ``connect_timeout`` inside the client's own
        # connect-retry loop, so one grace window past the first
        # failure is a conservative "it is really dead" signal.
        lost_grace = max(self.connect_timeout, 4 * self.heartbeat_s, 2.0)
        try:
            while not self._draining.is_set():
                if self._reregister.is_set():
                    self._reregister.clear()
                    self.stats["reregistrations"] += 1
                    if not self._register():
                        break
                try:
                    reply = self._call({
                        "op": "worker_lease", "worker": self.worker_id,
                    })
                except ServiceUnavailable:
                    now = time.monotonic()
                    if lost_since is None:
                        lost_since = now
                    elif now - lost_since >= lost_grace:
                        self.stats["server_lost"] += 1
                        self._server_draining.set()
                        break
                    self._backoff_sleep(attempt)
                    attempt += 1
                    continue
                attempt = 0
                lost_since = None
                if not reply.get("ok"):
                    if reply.get("error") == protocol.ERR_UNKNOWN_WORKER:
                        self._reregister.set()
                    else:
                        time.sleep(self.poll_s)
                    continue
                if reply.get("draining"):
                    self._server_draining.set()
                if reply.get("idle", False) or "lease" not in reply:
                    if self._server_draining.is_set():
                        break
                    if self._draining.is_set():
                        break
                    time.sleep(self.poll_s)
                    continue
                self._handle_lease(reply)
                if self._server_draining.is_set():
                    break
        finally:
            self._hb_stop.set()
            self._deregister()
            self._summary("drained")
        return 0

    def _handle_lease(self, grant: Dict[str, Any]) -> None:
        """Execute one granted lease end to end (never raises)."""
        lease_id = grant["lease"]
        epoch = int(grant.get("epoch", 0))
        self.stats["leases"] += 1
        self._chaos("granted")
        try:
            payload = replicate.unpickle_blob(
                grant["payload"], "lease payload"
            )
        except replicate.ReplicaIntegrityError as exc:
            self.stats["payload_corrupt"] += 1
            self._send_fail(lease_id, epoch, "corrupt payload: %s" % exc)
            return
        try:
            value, re_recorded = self._execute(payload)
        except ServiceUnavailable as exc:
            self._send_fail(lease_id, epoch, "replication lost: %s" % exc)
            return
        except Exception as exc:  # noqa: BLE001 - reported to the server
            self.stats["task_errors"] += 1
            self._send_fail(
                lease_id, epoch, "%s: %s" % (type(exc).__name__, exc)
            )
            return
        self._chaos("executed")
        self._push_artifacts(payload, re_recorded)
        self._chaos("pushed")
        self._send_complete(lease_id, epoch, value)
        self._chaos("completed")

    def _execute(self, payload: Dict[str, Any]) -> Tuple[Any, List[Tuple]]:
        """Run one stage task against the local store.

        For analyze stages, first pull every run entry the batch needs
        from the server store (the shard may have been recorded on any
        host); entries that cannot be fetched are re-recorded locally --
        determinism makes that safe, replication makes it rare.  Returns
        the stage value plus the run keys that had to be re-recorded.
        """
        stage = payload["stage"]
        factory = get_workload(payload["workload"]).program_factory(
            payload["params"]
        )
        re_recorded: List[Tuple] = []
        if stage == "analyze":
            namespace = payload["namespace"]
            for _run_index, seed, target in payload["runs"]:
                components = (seed, target, payload["switch_probability"])
                if self.store.has_run(namespace, components):
                    continue
                try:
                    pulled = replicate.pull_entry(
                        self._call, self.store, "trace", namespace,
                        components,
                    )
                except ServiceUnavailable:
                    pulled = False
                if pulled:
                    self.stats["pulls"] += 1
                else:
                    self.stats["pull_misses"] += 1
                    re_recorded.append(components)
        value = pipeline.run_stage_task(
            payload, store=self.store, factory=factory
        )
        self.stats["executed"] += 1
        self.stats["executed_" + stage] += 1
        if re_recorded:
            self.stats["re_recorded"] += len(re_recorded)
        return value, re_recorded

    def _push_artifacts(self, payload: Dict[str, Any],
                        re_recorded: List[Tuple]) -> None:
        """Replicate what this lease produced to the server store.

        Best-effort: a push lost to a partition only costs the server
        the chance to skip work later (it can re-derive everything
        deterministically), so failures are counted, never fatal.
        """
        stage = payload["stage"]
        namespace = payload["namespace"]
        entries: List[Tuple[str, Tuple]] = []
        if stage == "size":
            entries.append(
                ("value", ("sync_instances", payload["sizing_seed"]))
            )
        elif stage == "record":
            entries.append((
                "trace",
                (payload["seed"], payload["target"],
                 payload["switch_probability"]),
            ))
        elif stage == "analyze":
            for components in re_recorded:
                entries.append(("trace", components))
            digest = detectors_digest(
                CampaignConfig().detector_suite(),
                payload["check_soundness"],
            )
            for _run_index, seed, target in payload["runs"]:
                entries.append((
                    "value",
                    ("outcomes", seed, target,
                     payload["switch_probability"], digest),
                ))
        for kind, components in entries:
            try:
                if replicate.push_entry(
                    self._call, self.store, kind, namespace, components
                ):
                    self.stats["pushes"] += 1
                else:
                    self.stats["push_failures"] += 1
            except ServiceUnavailable:
                self.stats["push_failures"] += 1

    def _send_complete(self, lease_id: str, epoch: int, value: Any) -> None:
        message = {
            "op": "worker_complete",
            "worker": self.worker_id,
            "lease": lease_id,
            "epoch": epoch,
            "value": replicate.pickle_blob(value),
        }
        deadline = time.monotonic() + _COMPLETE_GIVE_UP_S
        attempt = 0
        while True:
            try:
                reply = self._call(message)
            except ServiceUnavailable:
                if time.monotonic() >= deadline:
                    self.stats["completions_abandoned"] += 1
                    return
                self._backoff_sleep(attempt)
                attempt += 1
                continue
            if reply.get("ok"):
                if reply.get("duplicate"):
                    self.stats["completions_deduped"] += 1
                else:
                    self.stats["completions"] += 1
                return
            if reply.get("error") == protocol.ERR_REPLICA_CORRUPT:
                # The value arrived damaged; re-encode and resend.
                if time.monotonic() < deadline:
                    message["value"] = replicate.pickle_blob(value)
                    self.stats["completions_reencoded"] += 1
                    continue
            if reply.get("error") == protocol.ERR_UNKNOWN_WORKER:
                self._reregister.set()
            self.stats["completions_dropped"] += 1
            return

    def _send_fail(self, lease_id: str, epoch: int, detail: str) -> None:
        try:
            self._call({
                "op": "worker_fail",
                "worker": self.worker_id,
                "lease": lease_id,
                "epoch": epoch,
                "detail": detail[:500],
            })
        except ServiceUnavailable:
            self.stats["fail_reports_lost"] += 1

    def _deregister(self) -> None:
        if self.worker_id is None:
            return
        try:
            self._call({
                "op": "worker_deregister",
                "worker": self.worker_id,
                "stats": {key: int(value)
                          for key, value in sorted(self.stats.items())},
            })
        except ServiceUnavailable:
            self.stats["deregister_lost"] += 1

    # -- process plumbing ------------------------------------------------------

    def _install_signal_handlers(self) -> None:
        def _drain(_signum, _frame):
            # Finish the current lease, then deregister and exit 0.
            self._draining.set()

        try:
            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        except ValueError:
            # Not the main thread (an embedding test); drain is then
            # requested through the event directly.
            pass

    def _summary(self, why: str) -> None:
        sys.stderr.write(
            "cord-worker %s: %s leases=%d executed=%d pulls=%d pushes=%d "
            "re_recorded=%d deduped=%d\n" % (
                self.name, why,
                self.stats["leases"], self.stats["executed"],
                self.stats["pulls"], self.stats["pushes"],
                self.stats["re_recorded"], self.stats["completions_deduped"],
            )
        )
        sys.stderr.flush()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="cord-worker",
        description="Remote execution agent for the cord campaign service.",
    )
    parser.add_argument("--socket", help="server unix socket path")
    parser.add_argument("--host", help="server TCP host")
    parser.add_argument("--port", type=int, help="server TCP port")
    parser.add_argument(
        "--root", required=True,
        help="worker-local state directory (its private trace store)",
    )
    parser.add_argument("--name", default="", help="worker display name")
    parser.add_argument(
        "--poll", type=float, default=None,
        help="idle lease-poll interval (default: the server's hint)",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=10.0,
        help="per-request connect retry budget in seconds (default 10)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-request socket timeout in seconds (default 120)",
    )
    args = parser.parse_args(argv)
    if args.socket is None and args.host is None:
        parser.error("need --socket or --host/--port")
    agent = WorkerAgent(
        root=args.root,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        name=args.name,
        poll_s=args.poll,
        connect_timeout=args.connect_timeout,
        timeout=args.timeout,
    )
    return agent.run()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
