"""Epoch-optimized happens-before detection (FastTrack-style).

The Ideal oracle keeps one vector stamp per ⟨word, thread⟩ -- O(threads)
space and comparison per access.  Almost all accesses, though, are
totally ordered with the previous access to their word, and a total order
needs only an *epoch*: a ``(clock, thread)`` pair, compared against a
vector clock in O(1).  This is the FastTrack insight (Flanagan & Freund,
PLDI 2009 -- three years after CORD), implemented here as a faster oracle
for large campaigns:

* writes are always representable as the writer's epoch;
* reads stay an epoch until two concurrent reads force promotion to a
  full read vector, demoting back to an epoch on the next ordered write.

Guarantees (property-tested against :class:`IdealDetector`):

* identical verdicts on race-free executions (both silent);
* identical *problem detection* -- it reports at least one race on a word
  iff the full oracle does (the first race per word is detected exactly);
  per-access flag sets may differ after the first race on a word, because
  post-race state updates diverge between the algorithms.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.clocks.vector import VectorClock
from repro.detectors.base import DataRace, Detector
from repro.trace.events import MemoryEvent

#: An epoch: (clock value, thread id).
Epoch = Tuple[int, int]


def _epoch_leq(epoch: Epoch, vc: VectorClock) -> bool:
    """``epoch`` happens-before-or-equals ``vc``."""
    clock, thread = epoch
    return clock <= vc.component(thread)


class _WordState:
    __slots__ = ("write", "read_epoch", "read_vc")

    def __init__(self):
        self.write: Optional[Epoch] = None
        self.read_epoch: Optional[Epoch] = None
        self.read_vc: Optional[VectorClock] = None


class EpochDetector(Detector):
    """FastTrack-style happens-before detector."""

    name = "Epoch"

    def __init__(self, n_threads: int):
        super().__init__()
        self.n_threads = n_threads
        self.vcs = [
            VectorClock.unit(n_threads, t) for t in range(n_threads)
        ]
        self._sync_write_vc: Dict[int, VectorClock] = {}
        self._sync_read_vc: Dict[int, VectorClock] = {}
        self._words: Dict[int, _WordState] = {}
        #: Representation statistics (the optimization's payoff).
        self.epoch_reads = 0
        self.vector_reads = 0

    # -- sync (identical to the Ideal oracle) ------------------------------

    def _process_sync(self, event: MemoryEvent) -> None:
        self._sync_access(event.thread, event.address, event.is_write)

    def _sync_access(self, t: int, address: int, is_write: int) -> None:
        vc = self.vcs[t]
        write_hist = self._sync_write_vc.get(address)
        if is_write:
            if write_hist is not None:
                vc = vc.joined(write_hist)
            read_hist = self._sync_read_vc.get(address)
            if read_hist is not None:
                vc = vc.joined(read_hist)
            self._sync_write_vc[address] = (
                write_hist.joined(vc) if write_hist else vc
            )
            self.vcs[t] = vc.ticked(t)
        else:
            if write_hist is not None:
                vc = vc.joined(write_hist)
            read_hist = self._sync_read_vc.get(address)
            self._sync_read_vc[address] = (
                read_hist.joined(vc) if read_hist else vc
            )
            self.vcs[t] = vc

    # -- data ---------------------------------------------------------------

    def _own_epoch(self, thread: int) -> Epoch:
        return (self.vcs[thread].component(thread), thread)

    def _report(
        self, t: int, icount: int, address: int, detail: str
    ) -> None:
        self.outcome.record_race(
            DataRace(
                access=(t, icount),
                address=address,
                other_thread=None,
                detail=detail,
            )
        )

    def _process_data(self, event: MemoryEvent) -> None:
        self._data_access(
            event.thread, event.address, event.is_write, event.icount
        )

    def _data_access(
        self, t: int, address: int, is_write: int, icount: int
    ) -> None:
        vc = self.vcs[t]
        word = self._words.setdefault(address, _WordState())

        write = word.write
        write_races = (
            write is not None
            and write[1] != t
            and not _epoch_leq(write, vc)
        )

        if not is_write:
            if write_races:
                self._report(t, icount, address, "read-write race")
            # Read tracking: same-epoch fast path, else epoch/VC logic.
            my_epoch = self._own_epoch(t)
            if word.read_vc is not None:
                self.vector_reads += 1
                comps = list(word.read_vc.components)
                comps[t] = max(comps[t], my_epoch[0])
                word.read_vc = VectorClock(comps)
            elif word.read_epoch is None or word.read_epoch[1] == t:
                self.epoch_reads += 1
                word.read_epoch = my_epoch
            elif _epoch_leq(word.read_epoch, vc):
                # Previous read is ordered before us: stay an epoch.
                self.epoch_reads += 1
                word.read_epoch = my_epoch
            else:
                # Two concurrent reads: promote to a read vector.
                self.vector_reads += 1
                comps = [0] * self.n_threads
                comps[word.read_epoch[1]] = word.read_epoch[0]
                comps[t] = my_epoch[0]
                word.read_vc = VectorClock(comps)
                word.read_epoch = None
            return

        # Write: races with the previous write and with any reads not
        # ordered before us.
        raced = False
        if write_races:
            raced = True
            self._report(t, icount, address, "write-write race")
        if not raced and word.read_vc is not None:
            if not vc.dominates(word.read_vc):
                raced = True
                self._report(
                    t, icount, address, "write after concurrent reads"
                )
        if (
            not raced
            and word.read_epoch is not None
            and word.read_epoch[1] != t
            and not _epoch_leq(word.read_epoch, vc)
        ):
            raced = True
            self._report(t, icount, address, "read-write race")
        # Writes demote read state (FastTrack's space saving).
        word.write = self._own_epoch(t)
        word.read_vc = None
        word.read_epoch = None


    def process(self, event: MemoryEvent) -> None:
        if event.is_sync:
            self._process_sync(event)
        else:
            self._process_data(event)

    def process_packed(self, packed) -> None:
        """Columnar dispatch: no event objects, same verdicts.

        On a cold detector, interprets only the trace's word residual
        when the kernels provide one (same argument as the Ideal
        oracle: single-thread words cannot race and their history is
        never consulted across threads).  Every dropped access is a
        data access; each dropped *read* would have taken the epoch
        fast path exactly once -- a single-thread word never promotes
        to a read vector -- so the representation statistics are
        reconstituted from the residual's drop counts.
        """
        sync_access = self._sync_access
        data_access = self._data_access
        cols = None
        if (
            not self._sync_write_vc
            and not self._sync_read_vc
            and not self._words
        ):
            residual = packed.word_residual()
            if residual is not None:
                cols = (
                    residual.threads,
                    residual.addresses,
                    residual.flags,
                    residual.icounts,
                )
                self.epoch_reads += residual.skipped_reads
        if cols is None:
            cols = packed.hot_columns()
        for t, address, eflags, icount in zip(*cols):
            if eflags & 2:
                sync_access(t, address, eflags & 1)
            else:
                data_access(t, address, eflags & 1, icount)
