"""The named detector suite used throughout Section 4's figures.

=============  ============================================================
Name           Meaning
=============  ============================================================
``Ideal``      vector clocks, unlimited history (the oracle)
``InfCache``   vector clocks, 2 entries/line, unlimited cache
``L2Cache``    vector clocks, 2 entries/line, 32 KB/processor ("the
               vector-clock scheme" Figures 12/13/16/17 normalize against)
``L1Cache``    vector clocks, 2 entries/line, 8 KB/processor
``CORD-D1``    scalar clocks, naive updates (no sync-read window)
``CORD-D4``    scalar clocks, window D=4
``CORD-D16``   scalar clocks, window D=16 (the paper's headline CORD)
``CORD-D256``  scalar clocks, window D=256
=============  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.cachesim.cache import CacheGeometry
from repro.detectors.base import Detector
from repro.detectors.ideal import IdealDetector
from repro.detectors.vector_cord import LimitedVectorDetector

#: Paper cache sizes (duplicated from repro.cord.config to keep this module
#: importable before the CORD package; the values are asserted equal there).
L2_CACHE_BYTES = 32 * 1024
L1_CACHE_BYTES = 8 * 1024

#: The D values swept in Figures 16/17.
D_SWEEP = (1, 4, 16, 256)

#: The paper's headline configuration.
HEADLINE_CORD = "CORD-D16"

#: The vector-clock baseline Figures 12/13 normalize against.
VECTOR_BASELINE = "L2Cache"


@dataclass(frozen=True)
class DetectorSpec:
    """A named detector factory (one instance per analyzed trace)."""

    name: str
    factory: Callable[[int], Detector]  # n_threads -> detector

    def build(self, n_threads: int) -> Detector:
        detector = self.factory(n_threads)
        detector.name = self.name
        detector.outcome.detector_name = self.name
        return detector


def _vector_spec(name: str, cache_size) -> DetectorSpec:
    def factory(n_threads: int) -> Detector:
        geometry = (
            CacheGeometry.infinite()
            if cache_size is None
            else CacheGeometry(cache_size)
        )
        return LimitedVectorDetector(n_threads, geometry, label=name)

    return DetectorSpec(name, factory)


def _cord_spec(name: str, d: int, cache_size=L2_CACHE_BYTES) -> DetectorSpec:
    def factory(n_threads: int) -> Detector:
        # Imported lazily: repro.cord.detector itself imports this package's
        # base module, and a top-level import here would close the cycle.
        from repro.cord.config import CordConfig
        from repro.cord.detector import CordDetector

        return CordDetector(
            CordConfig(d=d, cache_size=cache_size), n_threads
        )

    return DetectorSpec(name, factory)


def standard_suite(
    include_d_sweep: bool = True,
    include_cache_sweep: bool = True,
) -> List[DetectorSpec]:
    """The detector set needed for Figures 10 and 12-17."""
    specs: List[DetectorSpec] = [
        DetectorSpec("Ideal", lambda n: IdealDetector(n)),
    ]
    if include_cache_sweep:
        specs.append(_vector_spec("InfCache", None))
    specs.append(_vector_spec("L2Cache", L2_CACHE_BYTES))
    if include_cache_sweep:
        specs.append(_vector_spec("L1Cache", L1_CACHE_BYTES))
    if include_d_sweep:
        for d in D_SWEEP:
            specs.append(_cord_spec("CORD-D%d" % d, d))
    else:
        specs.append(_cord_spec(HEADLINE_CORD, 16))
    return specs


def suite_by_name(specs: Sequence[DetectorSpec]) -> Dict[str, DetectorSpec]:
    return {spec.name: spec for spec in specs}
