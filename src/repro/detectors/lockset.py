"""Eraser-style lockset detection (the paper's related-work contrast).

The paper cites Eraser [21] among software detectors and positions CORD's
happens-before approach against it implicitly: lockset algorithms report
*potential* races independent of the observed interleaving, which catches
problems that did not dynamically manifest -- but produces false alarms on
programs synchronized by anything other than locks (barriers, flags,
producer/consumer hand-offs), which is precisely the alarm behavior the
paper's production-run setting cannot tolerate.

This implementation follows the classic Eraser state machine per shared
word:

    Virgin -> Exclusive (first thread) -> Shared (second thread reads)
           -> Shared-Modified (second thread writes)

with candidate-lockset refinement: ``C(v) <- C(v) ∩ locks_held(t)`` on
each access in the Shared/Shared-Modified states; an empty candidate set
in Shared-Modified reports a potential race on the word.

The tests demonstrate both sides of the trade: lockset flags injected
missing-lock bugs even in runs where no race dynamically manifested
(something no happens-before detector can do), and it false-alarms on the
barrier- and flag-synchronized workloads that CORD stays silent on.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Set

from repro.detectors.base import DataRace, Detector
from repro.trace.events import MemoryEvent


class _State(enum.IntEnum):
    VIRGIN = 0
    EXCLUSIVE = 1
    SHARED = 2
    SHARED_MODIFIED = 3


class _WordState:
    __slots__ = ("state", "owner", "lockset", "reported")

    def __init__(self):
        self.state = _State.VIRGIN
        self.owner = -1
        self.lockset: FrozenSet[int] = frozenset()
        self.reported = False


class LocksetDetector(Detector):
    """Eraser's algorithm over the trace's labeled synchronization.

    Lock ownership is reconstructed from the sync-access stream: a sync
    *read* of a mutex word marks the start of a (successful) acquire --
    the engine lowers acquires to sync read + sync write and releases to
    a sync write, so a sync write to a word this thread is mid-acquiring
    completes the acquire, while any other sync write by the holder is
    the release.  Flag traffic (monotone counters) never acquires, so
    flag-synchronized ordering is invisible to the lockset -- Eraser's
    classic blind spot.
    """

    name = "Lockset"

    def __init__(self, n_threads: int):
        super().__init__()
        self.n_threads = n_threads
        self._held: list = [set() for _ in range(n_threads)]
        self._acquiring: list = [None] * n_threads
        self._words: Dict[int, _WordState] = {}

    # -- sync: reconstruct lock ownership ----------------------------------

    def _process_sync(self, event: MemoryEvent) -> None:
        thread = event.thread
        address = event.address
        if not event.is_write:
            # The read half of a test-and-set acquire.
            self._acquiring[thread] = address
            return
        if self._acquiring[thread] == address:
            self._held[thread].add(address)
            self._acquiring[thread] = None
        elif address in self._held[thread]:
            self._held[thread].discard(address)
        # Other sync writes (flag sets) carry no lockset meaning.

    # -- data: the Eraser state machine -------------------------------------

    def _process_data(self, event: MemoryEvent) -> None:
        thread = event.thread
        word = self._words.setdefault(event.address, _WordState())
        held = self._held[thread]

        if word.state == _State.VIRGIN:
            word.state = _State.EXCLUSIVE
            word.owner = thread
            return
        if word.state == _State.EXCLUSIVE:
            if thread == word.owner:
                return
            word.lockset = frozenset(held)
            word.state = (
                _State.SHARED_MODIFIED
                if event.is_write
                else _State.SHARED
            )
        else:
            word.lockset = word.lockset & frozenset(held)
            if event.is_write:
                word.state = _State.SHARED_MODIFIED

        if (
            word.state == _State.SHARED_MODIFIED
            and not word.lockset
            and not word.reported
        ):
            word.reported = True
            self.outcome.record_race(
                DataRace(
                    access=(thread, event.icount),
                    address=event.address,
                    other_thread=None,
                    detail="empty candidate lockset",
                )
            )

    def process(self, event: MemoryEvent) -> None:
        if event.is_sync:
            self._process_sync(event)
        else:
            self._process_data(event)
