"""Race detectors: CORD, the Ideal oracle, and vector-clock comparators.

All detectors consume a :class:`~repro.trace.stream.Trace` event-by-event
and produce a :class:`~repro.detectors.base.DetectionOutcome`.  The
configurations mirror Section 4 of the paper:

* :class:`~repro.detectors.ideal.IdealDetector` -- vector clocks, unlimited
  history: detects *every* data race exposed by the causality of the
  execution.  Its verdict defines "the problem manifested" (Figure 10) and
  the denominators of Figures 12-17.
* :class:`~repro.detectors.vector_cord.LimitedVectorDetector` -- vector
  clocks with CORD's buffering limits (two timestamps per line, finite
  caches): the ``InfCache`` / ``L2Cache`` / ``L1Cache`` configurations of
  Figures 14/15 and the "vs. Vector Clock" baseline of Figures 12/13/16/17.
* :class:`~repro.cord.detector.CordDetector` -- the paper's mechanism
  (scalar clocks, window ``D``, main-memory timestamps, order recording).

:mod:`repro.detectors.registry` builds the full named suite used by the
experiment drivers.
"""

from repro.detectors.base import (
    AccessId,
    DataRace,
    DetectionOutcome,
    Detector,
)
from repro.detectors.epoch import EpochDetector
from repro.detectors.ideal import IdealDetector
from repro.detectors.lockset import LocksetDetector
from repro.detectors.vector_cord import LimitedVectorDetector
from repro.detectors.registry import DetectorSpec, standard_suite

__all__ = [
    "AccessId",
    "DataRace",
    "DetectionOutcome",
    "Detector",
    "DetectorSpec",
    "EpochDetector",
    "IdealDetector",
    "LimitedVectorDetector",
    "LocksetDetector",
    "standard_suite",
]
