"""Detector interface and result types.

The paper's two evaluation criteria (Section 4.2) are encoded here:

* **raw data race detection** -- how many racy dynamic accesses a detector
  flags (:attr:`DetectionOutcome.raw_count`);
* **problem detection** -- whether *at least one* data race was reported in
  a run (:attr:`DetectionOutcome.problem_detected`), which is what matters
  for finding the underlying synchronization defect.

Detectors flag *accesses*: an access is flagged when it races with at least
one prior access the detector still has history for.  Counting flagged
accesses (rather than pairs) keeps raw counts comparable across detectors
with different history depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.trace.events import MemoryEvent
from repro.trace.stream import Trace

#: Identity of a dynamic access: (thread id, per-thread instruction count).
AccessId = Tuple[int, int]

#: Cap on stored race records; counting continues past it.
MAX_RACE_RECORDS = 50_000


@dataclass(frozen=True)
class DataRace:
    """One reported data race (a racy access and one conflicting predecessor).

    Attributes:
        access: the flagged (second) access.
        address: the contested word.
        other_thread: thread that performed the conflicting earlier access,
            when the detector knows it (CORD only knows the processor).
        detail: free-form diagnostic (timestamps involved, etc.).
    """

    access: AccessId
    address: int
    other_thread: Optional[int] = None
    detail: str = ""


@dataclass
class DetectionOutcome:
    """What one detector concluded about one trace."""

    detector_name: str
    flagged: Set[AccessId] = field(default_factory=set)
    races: List[DataRace] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def raw_count(self) -> int:
        """Raw data race detection count (flagged dynamic accesses)."""
        return len(self.flagged)

    @property
    def problem_detected(self) -> bool:
        """Did the detector catch the run's synchronization problem?"""
        return bool(self.flagged)

    def record_race(self, race: DataRace) -> None:
        self.flagged.add(race.access)
        if len(self.races) < MAX_RACE_RECORDS:
            self.races.append(race)


class Detector:
    """Base class: stream events in, produce a :class:`DetectionOutcome`.

    Subclasses implement :meth:`process` and may override :meth:`finish`.
    A detector instance observes exactly one trace.
    """

    name = "detector"

    def __init__(self):
        self.outcome = DetectionOutcome(detector_name=self.name)

    def process(self, event: MemoryEvent) -> None:
        raise NotImplementedError

    def process_batch(self, events) -> None:
        """Process a sequence of events.

        The default simply loops over :meth:`process`; hot detectors
        override this to hoist per-event setup out of the loop.
        """
        process = self.process
        for event in events:
            process(event)

    def process_packed(self, packed) -> None:
        """Process a :class:`~repro.trace.packed.PackedTrace`.

        The default feeds lazily materialized event objects through
        :meth:`process_batch` (correct for every detector); hot detectors
        override this to iterate the raw columns with no event objects
        at all.
        """
        self.process_batch(packed.iter_events())

    def finish(self, trace) -> DetectionOutcome:
        """Hook for end-of-trace work; returns the outcome.

        ``trace`` may be a :class:`Trace` or a
        :class:`~repro.trace.packed.PackedTrace`; implementations only
        rely on the shared metadata (``final_icounts``).
        """
        return self.outcome

    def run(self, trace: Trace) -> DetectionOutcome:
        """Process a whole trace through the per-event-object path."""
        self.process_batch(trace.events)
        return self.finish(trace)

    def run_packed(self, packed) -> DetectionOutcome:
        """Process a whole packed trace through the columnar path.

        Produces byte-identical outcomes to :meth:`run` on the object
        view of the same trace (asserted by the equivalence suite).
        """
        self.process_packed(packed)
        return self.finish(packed)


def default_thread_to_processor(n_threads: int, n_processors: int):
    """The default pinning: thread *i* runs on processor ``i % P``.

    The paper's runs use four threads on a 4-processor CMP, i.e. the
    identity mapping; the modulo form also covers oversubscribed tests.
    """
    return [t % n_processors for t in range(n_threads)]
