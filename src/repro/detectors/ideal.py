"""The Ideal detector: the paper's oracle configuration.

Vector clocks, unlimited "caches", unlimited history: detects **all**
dynamically occurring data races exposed by the causality of the execution
(Section 4's ``Ideal``).  Its history is per ⟨word, thread⟩ last-read and
last-write vector timestamps, which is complete: if the latest conflicting
access by thread *u* is ordered before the current access, every earlier
one is too (program order plus transitivity), so nothing is lost relative
to unbounded per-access history for *flagged-access* counting.

The happens-before relation it tracks is the standard one for an observed
execution: program order, plus the observed outcomes of conflicting
*synchronization* accesses.  Synchronization writes therefore join the
variable's accumulated read+write history and publish; synchronization
reads join the variable's write history; a thread's own component ticks on
each synchronization write (release).
"""

from __future__ import annotations

from typing import Dict

from repro.clocks.vector import VectorClock
from repro.detectors.base import DataRace, Detector
from repro.trace.events import MemoryEvent


class IdealDetector(Detector):
    """Oracle happens-before data race detector."""

    name = "Ideal"

    def __init__(self, n_threads: int):
        super().__init__()
        self.n_threads = n_threads
        self.vcs = [
            VectorClock.unit(n_threads, t) for t in range(n_threads)
        ]
        # Per sync word: accumulated writer / reader vector history.
        self._sync_write_vc: Dict[int, VectorClock] = {}
        self._sync_read_vc: Dict[int, VectorClock] = {}
        # Per data word, per thread: last read / last write vector stamps.
        self._last_read: Dict[int, Dict[int, VectorClock]] = {}
        self._last_write: Dict[int, Dict[int, VectorClock]] = {}

    # -- event processing -----------------------------------------------------

    def process(self, event: MemoryEvent) -> None:
        if event.is_sync:
            self._process_sync(event)
        else:
            self._process_data(event)

    def process_packed(self, packed) -> None:
        """Columnar loop: no event objects, same verdicts.

        Data accesses dominate the stream, so their path is inlined with
        the dominance test open-coded over raw component tuples (the
        ``a < b`` early-exit idiom).  History tables hold component
        tuples on this path instead of :class:`VectorClock` wrappers --
        fine because a detector instance observes exactly one trace
        through exactly one path.  Synchronization accesses (rare) go
        through :meth:`_sync_access` unchanged.

        On a cold detector the pass interprets only the trace's word
        residual (:meth:`PackedTrace.word_residual`) when the kernels
        provide one: a data access to a word no other thread ever
        touches in data mode cannot race (every conflicting stamp is the
        thread's own) and leaves history only its own thread would
        consult, so dropping it changes no verdict.  Sync tables are
        keyed separately, so a word used as data by one thread and sync
        by another stays exact.  The residual is config-independent and
        cached on the trace -- every oracle pass of a sweep shares one
        classification.
        """
        record_race = self.outcome.record_race
        vcs = self.vcs
        last_read = self._last_read
        last_write = self._last_write
        comps_by_thread = [vc.components for vc in vcs]
        # Sync joins run on raw component tuples (``map(max, ...)``)
        # instead of VectorClock allocations; the wrapped state tables
        # and ``vcs`` are rebuilt at the end of the pass.
        swv = {
            a: vc.components for a, vc in self._sync_write_vc.items()
        }
        srv = {
            a: vc.components for a, vc in self._sync_read_vc.items()
        }
        cols = None
        if (
            not self._sync_write_vc
            and not self._sync_read_vc
            and not last_read
            and not last_write
        ):
            # Cold start: prior history could order (or race with) the
            # accesses the residual drops, so warm detectors take the
            # full stream.
            residual = packed.word_residual()
            if residual is not None:
                cols = (
                    residual.threads,
                    residual.addresses,
                    residual.flags,
                    residual.icounts,
                )
        if cols is None:
            cols = packed.hot_columns()
        threads, addresses, flag_col, icounts = cols
        for t, address, eflags, icount in zip(
            threads, addresses, flag_col, icounts
        ):
            if eflags & 2:
                # _sync_access over raw tuples: join the accumulated
                # histories, publish, and (for writes) tick.  The
                # published write history equals the joined vector --
                # the join already dominates the prior history -- so
                # only the read table needs an explicit merge.
                comps = comps_by_thread[t]
                wh = swv.get(address)
                if wh is not None:
                    comps = tuple(map(max, comps, wh))
                if eflags & 1:
                    rh = srv.get(address)
                    if rh is not None:
                        comps = tuple(map(max, comps, rh))
                    swv[address] = comps
                    ticked = list(comps)
                    ticked[t] += 1
                    comps_by_thread[t] = tuple(ticked)
                else:
                    rh = srv.get(address)
                    srv[address] = (
                        tuple(map(max, rh, comps))
                        if rh is not None
                        else comps
                    )
                    comps_by_thread[t] = comps
                continue
            comps = comps_by_thread[t]
            is_write = eflags & 1
            raced_with = None
            write_hist = last_write.get(address)
            if write_hist:
                for u, stamp in write_hist.items():
                    if u != t:
                        for a, b in zip(comps, stamp):
                            if a < b:
                                raced_with = u
                                break
                        if raced_with is not None:
                            break
            if raced_with is None and is_write:
                read_hist = last_read.get(address)
                if read_hist:
                    for u, stamp in read_hist.items():
                        if u != t:
                            for a, b in zip(comps, stamp):
                                if a < b:
                                    raced_with = u
                                    break
                            if raced_with is not None:
                                break
            if raced_with is not None:
                record_race(
                    DataRace(
                        access=(t, icount),
                        address=address,
                        other_thread=raced_with,
                        detail="hb-unordered",
                    )
                )
            table = last_write if is_write else last_read
            entry = table.get(address)
            if entry is None:
                table[address] = {t: comps}
            else:
                entry[t] = comps
        for t in range(len(vcs)):
            vcs[t] = VectorClock(comps_by_thread[t])
        self._sync_write_vc = {
            a: VectorClock(c) for a, c in swv.items()
        }
        self._sync_read_vc = {
            a: VectorClock(c) for a, c in srv.items()
        }

    def _process_sync(self, event: MemoryEvent) -> None:
        self._sync_access(event.thread, event.address, event.is_write)

    def _sync_access(self, t: int, address: int, is_write: int) -> None:
        vc = self.vcs[t]
        write_hist = self._sync_write_vc.get(address)
        if is_write:
            # Ordered after every prior conflicting sync access (both
            # modes), then publish and tick (release).
            if write_hist is not None:
                vc = vc.joined(write_hist)
            read_hist = self._sync_read_vc.get(address)
            if read_hist is not None:
                vc = vc.joined(read_hist)
            merged = write_hist.joined(vc) if write_hist else vc
            self._sync_write_vc[address] = merged
            self.vcs[t] = vc.ticked(t)
        else:
            # Ordered after every prior write of the sync variable.
            if write_hist is not None:
                vc = vc.joined(write_hist)
            read_hist = self._sync_read_vc.get(address)
            self._sync_read_vc[address] = (
                read_hist.joined(vc) if read_hist else vc
            )
            self.vcs[t] = vc

    def _process_data(self, event: MemoryEvent) -> None:
        self._data_access(
            event.thread, event.address, event.is_write, event.icount
        )

    def _data_access(
        self, t: int, address: int, is_write: int, icount: int
    ) -> None:
        vc = self.vcs[t]

        write_hist = self._last_write.get(address)
        raced_with = None
        if write_hist:
            for u, stamp in write_hist.items():
                if u != t and not vc.dominates(stamp):
                    raced_with = u
                    break
        if raced_with is None and is_write:
            read_hist = self._last_read.get(address)
            if read_hist:
                for u, stamp in read_hist.items():
                    if u != t and not vc.dominates(stamp):
                        raced_with = u
                        break
        if raced_with is not None:
            self.outcome.record_race(
                DataRace(
                    access=(t, icount),
                    address=address,
                    other_thread=raced_with,
                    detail="hb-unordered",
                )
            )

        table = self._last_write if is_write else self._last_read
        table.setdefault(address, {})[t] = vc
