"""Vector-clock detectors with CORD's buffering limits.

These are the paper's comparison configurations (Section 4.3): vector
clocks -- so the happens-before test itself is exact -- but data-access
histories live in CORD-shaped cache metadata: at most two timestamp entries
per line with per-word access bits, held only for lines resident in a
finite per-processor cache.  Displaced history is simply lost (the vector
schemes have no main-memory timestamp; like ReEnact they miss all races
through non-cached variables, as the paper notes in Section 2.5).

=============  =========================================
Configuration  Geometry
=============  =========================================
``InfCache``   unlimited capacity, 2 entries per line
``L2Cache``    32 KB per processor, 2 entries per line
``L1Cache``    8 KB per processor, 2 entries per line
=============  =========================================

Synchronization-induced ordering is tracked exactly (an unbounded side
table per sync variable), isolating the variable under study -- the *data
history* limitation -- from incidental sync-metadata displacement.  This
modeling choice is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cachesim.cache import CacheGeometry
from repro.cachesim.snoop import SnoopDomain
from repro.clocks.vector import VectorClock
from repro.detectors.base import (
    DataRace,
    Detector,
    default_thread_to_processor,
)
from repro.meta.linemeta import LineMeta, TimestampEntry
from repro.trace.events import MemoryEvent


class LimitedVectorDetector(Detector):
    """Vector clocks over CORD-limited access histories.

    Args:
        n_threads: thread count of the traces to be analyzed.
        geometry: per-processor metadata cache geometry
            (:meth:`CacheGeometry.infinite` for ``InfCache``).
        n_processors: processors in the snoop domain (paper: 4).
        entries_per_line: timestamp entries per line (paper: 2).
        label: configuration name for reports.
    """

    def __init__(
        self,
        n_threads: int,
        geometry: CacheGeometry,
        n_processors: int = 4,
        entries_per_line: int = 2,
        label: Optional[str] = None,
    ):
        self.name = label or "Vector(%s)" % (
            "Inf" if geometry.is_infinite else "%dB" % geometry.size
        )
        super().__init__()
        self.n_threads = n_threads
        self.geometry = geometry
        self.vcs = [
            VectorClock.unit(n_threads, t) for t in range(n_threads)
        ]
        self._sync_write_vc: Dict[int, VectorClock] = {}
        self._sync_read_vc: Dict[int, VectorClock] = {}
        self._entries_per_line = entries_per_line
        self._snoop = SnoopDomain(
            n_processors, geometry, lambda: LineMeta(entries_per_line)
        )
        self._thread_proc = default_thread_to_processor(
            n_threads, n_processors
        )

    # -- event processing ---------------------------------------------------

    def process(self, event: MemoryEvent) -> None:
        if event.is_sync:
            self._process_sync(event)
        else:
            self._process_data(event)

    def process_batch(self, events) -> None:
        """The per-event pipeline of :meth:`_process_data`, batched.

        Same structure as ``CordDetector.process_batch``: invariant
        lookups hoisted out of the loop, the snoop generator and the
        MetadataCache insert/MRU path inlined, and the vector-clock
        dominance test open-coded over the component tuples.  Verdicts
        are identical to the per-event path (the property and campaign
        suites assert it).
        """
        vcs = self.vcs
        thread_proc = self._thread_proc
        line_mask = ~(self.geometry.line_size - 1)
        caches = self._snoop.caches
        cache_sets = [cache._sets for cache in caches]
        set_shift = caches[0]._set_shift
        set_mask = caches[0]._set_mask
        n_processors = len(caches)
        entries_per_line = self._entries_per_line
        record_race = self.outcome.record_race
        sync_access = self._sync_access
        for event in events:
            if event.is_sync:
                sync_access(event.thread, event.address, event.is_write)
                continue
            t = event.thread
            processor = thread_proc[t]
            address = event.address
            line = address & line_mask
            word = (address - line) >> 2
            is_write = event.is_write
            set_index = (line >> set_shift) & set_mask
            comps = vcs[t].components

            # Snoop remote caches for conflicting cached history.
            raced_processor = None
            for remote in range(n_processors):
                if remote == processor:
                    continue
                meta = cache_sets[remote][set_index].get(line)
                if meta is None:
                    continue
                for entry in meta.entries:
                    mask = entry.write_mask
                    if is_write:
                        mask |= entry.read_mask
                    if (mask >> word) & 1:
                        other = entry.ts.components
                        for a, b in zip(comps, other):
                            if a < b:
                                raced_processor = remote
                                break
                        if raced_processor is not None:
                            break
                if raced_processor is not None:
                    break
            if raced_processor is not None:
                record_race(
                    DataRace(
                        access=(t, event.icount),
                        address=address,
                        other_thread=None,
                        detail="vector-unordered vs P%d" % raced_processor,
                    )
                )

            # Local metadata insert/MRU-touch; displaced history is lost.
            local_set = cache_sets[processor][set_index]
            meta = local_set.get(line)
            if meta is None:
                cache = caches[processor]
                meta = LineMeta(entries_per_line)
                local_set[line] = meta
                cache.insertions += 1
                if len(local_set) > cache._capacity:
                    local_set.pop(next(iter(local_set)))
                    cache.evictions += 1
            else:
                local_set[line] = local_set.pop(line)
            meta.data_valid = True
            if is_write:
                for remote in range(n_processors):
                    if remote == processor:
                        continue
                    rmeta = cache_sets[remote][set_index].get(line)
                    if rmeta is not None:
                        rmeta.data_valid = False
            # record_access inline: merge into the entry stamped with
            # this exact vector, else allocate at the front.
            vc = vcs[t]
            merged = False
            for entry in meta.entries:
                if entry.ts.components == comps:
                    if is_write:
                        entry.write_mask |= 1 << word
                    else:
                        entry.read_mask |= 1 << word
                    merged = True
                    break
            if not merged:
                entry = TimestampEntry(vc)
                if is_write:
                    entry.write_mask = 1 << word
                else:
                    entry.read_mask = 1 << word
                entries = meta.entries
                entries.insert(0, entry)
                if len(entries) > entries_per_line:
                    entries.pop()

    def process_packed(self, packed) -> None:
        """The :meth:`process_batch` pipeline over raw trace columns.

        No event objects: sync and data accesses come straight out of
        the packed trace's ``thread``/``address``/``flags``/``icount``
        arrays.  Verdicts are identical to the object paths (asserted
        by the packed-equivalence suite).

        With an **infinite** geometry and a cold detector, the pass
        interprets only the trace's line residual
        (:meth:`PackedTrace.line_residual`): a line no other thread
        touches never appears in a remote cache, so its accesses can
        neither report nor influence a verdict.  Finite geometries must
        take the full stream -- a private line still competes for
        capacity, and the evictions it causes are observable.
        """
        vcs = self.vcs
        thread_proc = self._thread_proc
        line_mask = ~(self.geometry.line_size - 1)
        caches = self._snoop.caches
        cache_sets = [cache._sets for cache in caches]
        set_shift = caches[0]._set_shift
        set_mask = caches[0]._set_mask
        n_processors = len(caches)
        entries_per_line = self._entries_per_line
        record_race = self.outcome.record_race
        sync_access = self._sync_access
        cols = None
        if (
            self.geometry.is_infinite
            and not self._sync_write_vc
            and not self._sync_read_vc
            and not any(cache.insertions for cache in caches)
        ):
            residual = packed.line_residual(line_mask)
            if residual is not None:
                cols = (
                    residual.threads,
                    residual.addresses,
                    residual.flags,
                    residual.icounts,
                )
        if cols is None:
            cols = packed.hot_columns()
        for t, address, eflags, icount in zip(*cols):
            is_write = eflags & 1
            if eflags & 2:
                sync_access(t, address, is_write)
                continue
            processor = thread_proc[t]
            line = address & line_mask
            word = (address - line) >> 2
            set_index = (line >> set_shift) & set_mask
            comps = vcs[t].components

            # Snoop remote caches for conflicting cached history.
            raced_processor = None
            for remote in range(n_processors):
                if remote == processor:
                    continue
                meta = cache_sets[remote][set_index].get(line)
                if meta is None:
                    continue
                for entry in meta.entries:
                    mask = entry.write_mask
                    if is_write:
                        mask |= entry.read_mask
                    if (mask >> word) & 1:
                        other = entry.ts.components
                        for a, b in zip(comps, other):
                            if a < b:
                                raced_processor = remote
                                break
                        if raced_processor is not None:
                            break
                if raced_processor is not None:
                    break
            if raced_processor is not None:
                record_race(
                    DataRace(
                        access=(t, icount),
                        address=address,
                        other_thread=None,
                        detail="vector-unordered vs P%d" % raced_processor,
                    )
                )

            # Local metadata insert/MRU-touch; displaced history is lost.
            local_set = cache_sets[processor][set_index]
            meta = local_set.get(line)
            if meta is None:
                cache = caches[processor]
                meta = LineMeta(entries_per_line)
                local_set[line] = meta
                cache.insertions += 1
                if len(local_set) > cache._capacity:
                    local_set.pop(next(iter(local_set)))
                    cache.evictions += 1
            else:
                local_set[line] = local_set.pop(line)
            meta.data_valid = True
            if is_write:
                for remote in range(n_processors):
                    if remote == processor:
                        continue
                    rmeta = cache_sets[remote][set_index].get(line)
                    if rmeta is not None:
                        rmeta.data_valid = False
            # record_access inline: merge into the entry stamped with
            # this exact vector, else allocate at the front.
            vc = vcs[t]
            merged = False
            for entry in meta.entries:
                if entry.ts.components == comps:
                    if is_write:
                        entry.write_mask |= 1 << word
                    else:
                        entry.read_mask |= 1 << word
                    merged = True
                    break
            if not merged:
                entry = TimestampEntry(vc)
                if is_write:
                    entry.write_mask = 1 << word
                else:
                    entry.read_mask = 1 << word
                entries = meta.entries
                entries.insert(0, entry)
                if len(entries) > entries_per_line:
                    entries.pop()

    def _process_sync(self, event: MemoryEvent) -> None:
        self._sync_access(event.thread, event.address, event.is_write)

    def _sync_access(self, t: int, address: int, is_write: int) -> None:
        vc = self.vcs[t]
        write_hist = self._sync_write_vc.get(address)
        if is_write:
            if write_hist is not None:
                vc = vc.joined(write_hist)
            read_hist = self._sync_read_vc.get(address)
            if read_hist is not None:
                vc = vc.joined(read_hist)
            self._sync_write_vc[address] = (
                write_hist.joined(vc) if write_hist else vc
            )
            self.vcs[t] = vc.ticked(t)
        else:
            if write_hist is not None:
                vc = vc.joined(write_hist)
            read_hist = self._sync_read_vc.get(address)
            self._sync_read_vc[address] = (
                read_hist.joined(vc) if read_hist else vc
            )
            self.vcs[t] = vc

    def _process_data(self, event: MemoryEvent) -> None:
        t = event.thread
        processor = self._thread_proc[t]
        vc = self.vcs[t]
        line = self.geometry.line_address(event.address)
        word = (event.address - line) // 4
        is_write = event.is_write

        # Snoop remote caches for conflicting cached history.
        raced_processor = None
        for remote, meta in self._snoop.snoop(processor, line):
            for stamp in meta.conflicting_timestamps(word, is_write):
                if not vc.dominates(stamp):
                    raced_processor = remote
                    break
            if raced_processor is not None:
                break
        if raced_processor is not None:
            self.outcome.record_race(
                DataRace(
                    access=(t, event.icount),
                    address=event.address,
                    other_thread=None,
                    detail="vector-unordered vs P%d" % raced_processor,
                )
            )

        # Record the access in the local metadata cache; displaced history
        # is lost (no main-memory timestamps in the vector schemes).
        cache = self._snoop.cache_of(processor)
        meta, _evicted = cache.access(line)
        meta.data_valid = True
        if is_write:
            self._snoop.invalidate_remote(processor, line)
        meta.record_access(vc, word, is_write)

    def finish(self, trace):
        self.outcome.counters["evictions"] = self._snoop.total_evictions()
        return self.outcome
