"""The cache walker for 16-bit sliding-window clocks (Section 2.7.5).

With 16-bit timestamps, comparisons are only meaningful while all live
values fit inside a window of ``2^15 - 1``.  The paper's walker uses idle
cache ports to scan in-cache timestamps, evict very stale ones, and compute
the minimum resident timestamp, which gates clock updates that would exceed
the window (the paper observes the stall never fires because the walker is
effective).

Our walker runs every ``period`` detector events: it scans a processor's
metadata cache, retires entries whose timestamp lags the current maximum
thread clock by more than ``stale_lag``, folds them into the main-memory
timestamps, and records the minimum surviving timestamp.
"""

from __future__ import annotations

from typing import Optional

from repro.cachesim.cache import MetadataCache
from repro.common.errors import ConfigError
from repro.meta.memts import MainMemoryTimestamps


class CacheWalker:
    """Stale-timestamp eviction for one processor's metadata cache.

    Args:
        cache: the metadata cache to walk.
        memory_ts: where retired timestamps are folded.
        stale_lag: entries older than ``max_clock - stale_lag`` are evicted.
            Must be comfortably below the sliding window (2^15 - 1) so the
            window invariant holds with margin.
        period: walk every this-many recorded events.
    """

    def __init__(
        self,
        cache: MetadataCache,
        memory_ts: MainMemoryTimestamps,
        stale_lag: int = 1 << 13,
        period: int = 4096,
        store=None,
    ):
        if stale_lag < 1:
            raise ConfigError("stale_lag must be >= 1, got %d" % stale_lag)
        if period < 1:
            raise ConfigError("period must be >= 1, got %d" % period)
        self.cache = cache
        self.memory_ts = memory_ts
        #: When set, cache payloads are integer slots into this
        #: :class:`~repro.meta.linestore.ScalarLineStore`; otherwise they
        #: are :class:`~repro.meta.linemeta.LineMeta` objects.
        self.store = store
        self.stale_lag = stale_lag
        self.period = period
        self.min_resident_ts: Optional[int] = None
        self.walks = 0
        self.entries_retired = 0
        self._ticks = 0

    def tick(self, max_clock: int) -> bool:
        """Advance the walker one event; walk when the period elapses.

        Returns True when a walk happened.
        """
        self._ticks += 1
        if self._ticks < self.period:
            return False
        self._ticks = 0
        self.walk(max_clock)
        return True

    def walk(self, max_clock: int) -> None:
        """One full pass: evict stale entries, compute the resident minimum."""
        self.walks += 1
        threshold = max_clock - self.stale_lag
        minimum: Optional[int] = None
        if self.store is not None:
            store = self.store
            for line_address, slot in list(self.cache.lines().items()):
                n_retired, kept_min = store.retire_stale(
                    slot, threshold, self.memory_ts
                )
                self.entries_retired += n_retired
                if kept_min is not None and (
                    minimum is None or kept_min < minimum
                ):
                    minimum = kept_min
                if not store.count[slot]:
                    self.cache.drop(line_address)
                    store.free(slot)
            self.min_resident_ts = minimum
            return
        for line_address, meta in list(self.cache.lines().items()):
            kept = []
            for entry in meta.entries:
                if entry.ts < threshold:
                    self.memory_ts.fold_entry(entry)
                    self.entries_retired += 1
                else:
                    kept.append(entry)
                    if minimum is None or entry.ts < minimum:
                        minimum = entry.ts
            if kept != meta.entries:
                meta.entries = kept
                # Losing history voids the line's no-conflict guarantees.
                meta.read_filter = False
                meta.write_filter = False
            if not meta.entries:
                self.cache.drop(line_address)
        self.min_resident_ts = minimum

    def window_headroom(self, clock: int, window: int) -> Optional[int]:
        """How far ``clock`` may advance before leaving the window.

        Returns None when the cache holds no timestamps (no constraint).
        A non-positive value would require the paper's stall; tests assert
        it stays positive in all experiment runs, mirroring the paper's
        observation that stalls never occur.
        """
        if self.min_resident_ts is None:
            return None
        return self.min_resident_ts + window - clock
