"""CORD cache metadata: per-line timestamp histories and memory timestamps.

This package models the state the paper adds to each cache (shown in gray
in its Figure 2):

* :mod:`repro.meta.linemeta` -- per line: up to two timestamps, each with
  per-word read/write access bits, plus the two check-filter bits and a
  data-valid bit (Section 2.3 and 2.7.2).
* :mod:`repro.meta.memts` -- the single read/write timestamp pair that
  covers all of main memory, updated when timestamps are displaced from
  caches (Section 2.5).
* :mod:`repro.meta.walker` -- the cache walker that evicts very stale
  timestamps so 16-bit sliding-window clocks never wrap ambiguously
  (Section 2.7.5).

The timestamp type is generic: CORD stores scalar ints, the comparison
configurations store :class:`~repro.clocks.vector.VectorClock` objects in
the same structures.
"""

from repro.meta.linemeta import LineMeta, TimestampEntry
from repro.meta.memts import MainMemoryTimestamps
from repro.meta.walker import CacheWalker

__all__ = [
    "CacheWalker",
    "LineMeta",
    "MainMemoryTimestamps",
    "TimestampEntry",
]
