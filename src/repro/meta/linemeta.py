"""Per-cache-line CORD metadata.

Each cached line carries (Figure 2 of the paper, gray state):

* up to ``max_entries`` timestamp entries (the paper uses two), each with a
  timestamp and per-word read/write access bits -- "this effectively
  provides per-word timestamps, but only for accesses that correspond to
  the line's latest timestamp(s)";
* two *check-filter* bits saying the whole line can be read / written
  without broadcasting another race-check request (Section 2.7.2);
* a data-valid bit: a remote write leaves the metadata in place but makes
  the next local access a miss, which is what re-triggers race checks.

Entries are kept newest-first.  Recording an access with a timestamp that
differs from every resident entry allocates a new entry and *retires* the
oldest; the caller folds retired entries into the main-memory timestamp
pair (scalar CORD) or drops them (vector comparison configs).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ConfigError


class TimestampEntry:
    """One timestamp with its per-word read/write access bits."""

    __slots__ = ("ts", "read_mask", "write_mask")

    def __init__(self, ts, read_mask: int = 0, write_mask: int = 0):
        self.ts = ts
        self.read_mask = read_mask
        self.write_mask = write_mask

    def covers(self, word: int, need_reads: bool) -> bool:
        """Does this entry hold relevant history for ``word``?

        Write history always conflicts with a new access; read history only
        conflicts with a new *write* (``need_reads=True``).
        """
        mask = self.write_mask | (self.read_mask if need_reads else 0)
        return bool((mask >> word) & 1)

    def record(self, word: int, is_write: bool) -> None:
        if is_write:
            self.write_mask |= 1 << word
        else:
            self.read_mask |= 1 << word

    @property
    def has_reads(self) -> bool:
        return self.read_mask != 0

    @property
    def has_writes(self) -> bool:
        return self.write_mask != 0

    def __repr__(self):
        return "TimestampEntry(ts=%r, r=%#x, w=%#x)" % (
            self.ts,
            self.read_mask,
            self.write_mask,
        )


class LineMeta:
    """CORD metadata for one cached line.

    Attributes:
        entries: resident :class:`TimestampEntry` list, newest first.
        read_filter / write_filter: check-filter bits.
        data_valid: False after a remote write invalidated the local data
            copy (metadata survives until replacement).
        write_permission: the coherence M/E-vs-S distinction: a remote
            *read* downgrades the local copy, so the next local write
            needs a bus transaction (and therefore a race check) even
            though its access bit may still be set.  Without this, a
            write-after-read conflict could go unrecorded (found by the
            replay-equivalence property test).
    """

    __slots__ = ("entries", "max_entries", "read_filter", "write_filter",
                 "filter_clock", "data_valid", "write_permission")

    def __init__(self, max_entries: int = 2):
        if max_entries < 1:
            raise ConfigError(
                "need at least one timestamp entry per line, got %d"
                % max_entries
            )
        self.entries: List[TimestampEntry] = []
        self.max_entries = max_entries
        self.read_filter = False
        self.write_filter = False
        self.filter_clock = None
        self.data_valid = False
        self.write_permission = False

    # -- race-check support ------------------------------------------------

    def conflicting_timestamps(
        self, word: int, is_write: bool
    ) -> Iterator:
        """Timestamps of resident history that conflicts with an access.

        A write conflicts with prior reads and writes of the word; a read
        conflicts only with prior writes (one side of a conflict must be a
        write, Section 2.1).
        """
        for entry in self.entries:
            if entry.covers(word, need_reads=is_write):
                yield entry.ts

    def any_conflict_in_line(self, is_write: bool) -> bool:
        """Does *any word* of the line have relevant history here?

        Used for check-filter establishment: a race check that finds no
        potential conflict anywhere in the line grants filter permission.
        """
        for entry in self.entries:
            if entry.write_mask:
                return True
            if is_write and entry.read_mask:
                return True
        return False

    def filter_allows(self, is_write: bool, clock=None) -> bool:
        """Is the line's check filter usable for this access?

        Filter bits are granted *at a clock value*: a filtered access is
        recorded without a race check, so it must land at the same clock
        the clean check proved conflict-free (otherwise the access skips
        the memory-timestamp ordering comparison its new clock value would
        require).  Passing ``clock`` enforces that; ``clock=None`` checks
        only the raw bit (introspection and legacy callers).
        """
        bit = self.write_filter if is_write else self.read_filter
        if not bit:
            return False
        return clock is None or self.filter_clock == clock

    def grant_filter(self, is_write: bool, clock=None) -> None:
        """Set filter bit(s) after a clean race check at ``clock``.

        A clean *write* check proves no read or write history anywhere, so
        both filters may be set; a clean read check only proves the absence
        of write history, so it grants only the read filter.  The grant is
        tagged with the owning thread's clock: any later clock change
        (sync-write increment, race update, migration) invalidates it --
        the hardware flash-clears filter bits on a clock change, we tag
        and compare lazily.
        """
        self.read_filter = True
        if is_write:
            self.write_filter = True
        self.filter_clock = clock

    def revoke_filters(self, remote_is_write: bool) -> None:
        """Revoke filters when a remote access race-checks this line.

        A remote write conflicts with everything: both filters drop.  A
        remote read only invalidates our permission to *write* unchecked.
        Either way the coherence write permission is lost (M/E -> S or I).
        """
        self.write_filter = False
        self.write_permission = False
        if remote_is_write:
            self.read_filter = False

    # -- recording the local access ----------------------------------------

    def record_access(
        self, ts, word: int, is_write: bool
    ) -> Optional[TimestampEntry]:
        """Record a local access at timestamp ``ts``.

        If an entry with this exact timestamp is resident, its access bit
        is set.  Otherwise a new entry is allocated at the front; when that
        overflows ``max_entries`` the oldest entry is retired and returned
        (the caller folds it into the main-memory timestamps).
        """
        for entry in self.entries:
            if entry.ts == ts:
                entry.record(word, is_write)
                return None
        entry = TimestampEntry(ts)
        entry.record(word, is_write)
        self.entries.insert(0, entry)
        if len(self.entries) > self.max_entries:
            return self.entries.pop()
        return None

    def retire_all(self) -> List[TimestampEntry]:
        """Remove and return all entries (line eviction)."""
        retired, self.entries = self.entries, []
        self.read_filter = False
        self.write_filter = False
        self.filter_clock = None
        return retired

    def newest_timestamp(self):
        """Most recently recorded timestamp, or None."""
        return self.entries[0].ts if self.entries else None

    def oldest_timestamp(self):
        """Least recently recorded timestamp, or None."""
        return self.entries[-1].ts if self.entries else None

    def __repr__(self):
        return "LineMeta(%r, rf=%s, wf=%s, valid=%s)" % (
            self.entries,
            self.read_filter,
            self.write_filter,
            self.data_valid,
        )
