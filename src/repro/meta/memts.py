"""The main-memory timestamp pair (Section 2.5 of the paper).

CORD never timestamps individual memory locations.  Instead the entire main
memory shares *one* read timestamp and *one* write timestamp.  Whenever a
per-line timestamp entry is removed from a cache (entry retirement or line
eviction), its timestamp is folded in: the memory read timestamp becomes
the max over retired timestamps that had any read bit set, likewise for
writes.  Accesses that find no covering cached history compare against this
pair; such comparisons may order threads (and are required for correct
order-recording, Figure 6) but are never reported as data races (Figure 7's
imprecision argument).

In a snooping system every cache keeps its own coherent copy of the pair;
changes are broadcast.  Functionally all copies hold the same values, so we
model one shared pair and *count* the update broadcasts for the timing
model (:attr:`update_broadcasts`).
"""

from __future__ import annotations

from typing import Iterable

from repro.meta.linemeta import TimestampEntry


class MainMemoryTimestamps:
    """The global read/write timestamp pair plus broadcast accounting."""

    __slots__ = ("read_ts", "write_ts", "update_broadcasts", "folds")

    def __init__(self, initial: int = 0):
        self.read_ts = initial
        self.write_ts = initial
        #: Number of memory-timestamp update transactions that would appear
        #: on the bus (one per fold that actually raised a value).
        self.update_broadcasts = 0
        #: Total entries folded (whether or not they raised a timestamp).
        self.folds = 0

    def fold_raw(
        self, ts: int, has_reads: bool, has_writes: bool
    ) -> bool:
        """Fold one retired timestamp; return True if a value rose.

        The line's timestamp overwrites the memory read (write) timestamp
        only when the entry has a read (write) access bit set *and* the
        entry's timestamp is larger (Section 2.5).  This is the flat-store
        fast path -- no entry object needed.
        """
        self.folds += 1
        changed = False
        if has_reads and ts > self.read_ts:
            self.read_ts = ts
            changed = True
        if has_writes and ts > self.write_ts:
            self.write_ts = ts
            changed = True
        if changed:
            self.update_broadcasts += 1
        return changed

    def fold_entry(self, entry: TimestampEntry) -> bool:
        """Fold one retired :class:`TimestampEntry` (object path)."""
        return self.fold_raw(
            entry.ts, entry.read_mask != 0, entry.write_mask != 0
        )

    def fold_entries(self, entries: Iterable[TimestampEntry]) -> None:
        for entry in entries:
            self.fold_entry(entry)

    def conflicting_timestamp(self, is_write: bool) -> int:
        """The memory timestamp a new access must be ordered against.

        A read conflicts with past writes only; a write conflicts with past
        reads and writes, so it compares against the larger of the pair.
        """
        if is_write:
            return max(self.read_ts, self.write_ts)
        return self.write_ts

    def __repr__(self):
        return "MainMemoryTimestamps(read=%d, write=%d)" % (
            self.read_ts,
            self.write_ts,
        )
