"""Flat array-backed per-line CORD metadata (the scalar hot path).

:class:`ScalarLineStore` holds the metadata of *every* line of one snoop
domain in parallel flat integer columns instead of per-line
:class:`~repro.meta.linemeta.LineMeta` objects with ``TimestampEntry``
lists.  A cached line is identified by an integer *slot*; the caches map
line address -> slot, and all metadata operations are flat array reads
and writes:

=========  =====  ====================================================
column     type   contents (``E`` = entries per line)
=========  =====  ====================================================
``ts``     ``q``  ``E`` timestamps per slot, newest first
``rmask``  ``Q``  per-entry read access bits, one bit per word
``wmask``  ``Q``  per-entry write access bits
``count``  ``B``  resident entries in the slot (0..E)
``flags``  ``B``  packed filter/valid/permission bits (see ``F_*``)
``fclock`` ``q``  clock value the check filter was granted at
=========  =====  ====================================================

Semantics are bit-for-bit identical to ``LineMeta`` with scalar integer
timestamps -- the golden replay suite pins that equivalence.  The object
path remains for detectors whose timestamps are not scalars (the vector
comparison configurations store :class:`VectorClock` objects).

Freed slots go on a free list and are reused, so a long campaign touches
a bounded region of each column: no per-event object allocation, no GC
pressure from metadata churn.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ConfigError

#: Scalar timestamps are stored as signed 64-bit values.  Functional-mode
#: clocks grow by O(events); 2^63 is unreachable in any real campaign.
_TS_MAX = (1 << 63) - 1

#: flags bits
F_READ_FILTER = 1
F_WRITE_FILTER = 2
F_DATA_VALID = 4
F_WRITE_PERMISSION = 8
_F_FILTERS = F_READ_FILTER | F_WRITE_FILTER


class ScalarLineStore:
    """Slot-addressed flat storage for scalar per-line CORD metadata.

    Args:
        entries_per_line: timestamp entries per line (the paper uses 2).
        words_per_line: words covered by each access bitmask (line size /
            4; must fit the 64-bit mask columns).
    """

    __slots__ = ("entries_per_line", "words_per_line", "ts", "rmask",
                 "wmask", "count", "flags", "fclock", "_free")

    def __init__(self, entries_per_line: int = 2, words_per_line: int = 16):
        if entries_per_line < 1:
            raise ConfigError(
                "need at least one timestamp entry per line, got %d"
                % entries_per_line
            )
        if not 1 <= words_per_line <= 64:
            raise ConfigError(
                "flat masks cover 1..64 words per line, got %d "
                "(use lines of at most 256 bytes)" % words_per_line
            )
        self.entries_per_line = entries_per_line
        self.words_per_line = words_per_line
        # Plain lists, not array.array: the columns are indexed tens of
        # times per event on the detector hot path, and a list hands
        # back pre-boxed ints where an array must box on every read.
        # The compactness argument doesn't apply -- slots are bounded by
        # cache capacity, not trace length.
        self.ts: List[int] = []
        self.rmask: List[int] = []
        self.wmask: List[int] = []
        self.count: List[int] = []
        self.flags: List[int] = []
        self.fclock: List[int] = []
        self._free: List[int] = []

    def __len__(self) -> int:
        """Slots currently allocated (resident lines)."""
        return len(self.count) - len(self._free)

    # -- slot lifecycle ---------------------------------------------------

    def alloc(self) -> int:
        """Allocate a fresh slot for a newly cached line.

        Entry columns are left stale on reuse: every reader walks at
        most ``count`` entries (reset to zero here), and filter clocks
        are only consulted when a filter flag is set, so zeroing the
        arrays would be dead work on the hot fill path.
        """
        if self._free:
            slot = self._free.pop()
            self.count[slot] = 0
            self.flags[slot] = 0
            return slot
        slot = len(self.count)
        self.ts.extend([0] * self.entries_per_line)
        self.rmask.extend([0] * self.entries_per_line)
        self.wmask.extend([0] * self.entries_per_line)
        self.count.append(0)
        self.flags.append(0)
        self.fclock.append(0)
        return slot

    def free(self, slot: int) -> None:
        """Return a slot to the free list (its line left every cache)."""
        self._free.append(slot)

    # -- race-check support ----------------------------------------------

    def conflicting_timestamps(
        self, slot: int, word: int, is_write: bool
    ) -> List[int]:
        """Timestamps of resident history conflicting with an access.

        A write conflicts with prior reads and writes of the word; a read
        conflicts only with prior writes (Section 2.1), newest first.
        """
        base = slot * self.entries_per_line
        bit = 1 << word
        out = []
        for e in range(base, base + self.count[slot]):
            mask = self.wmask[e]
            if is_write:
                mask |= self.rmask[e]
            if mask & bit:
                out.append(self.ts[e])
        return out

    def any_conflict_in_line(self, slot: int, is_write: bool) -> bool:
        """Does *any word* of the line have relevant history here?"""
        base = slot * self.entries_per_line
        for e in range(base, base + self.count[slot]):
            if self.wmask[e]:
                return True
            if is_write and self.rmask[e]:
                return True
        return False

    def bit_already_set(
        self, slot: int, clock: int, word: int, is_write: bool
    ) -> bool:
        """Was this word already accessed in this mode at this clock?"""
        base = slot * self.entries_per_line
        for e in range(base, base + self.count[slot]):
            if self.ts[e] == clock:
                mask = self.wmask[e] if is_write else self.rmask[e]
                return bool((mask >> word) & 1)
        return False

    # -- check filters ----------------------------------------------------

    def filter_allows(self, slot: int, is_write: bool, clock: int) -> bool:
        bit = F_WRITE_FILTER if is_write else F_READ_FILTER
        return bool(self.flags[slot] & bit) and self.fclock[slot] == clock

    def grant_filter(self, slot: int, is_write: bool, clock: int) -> None:
        bits = _F_FILTERS if is_write else F_READ_FILTER
        self.flags[slot] |= bits
        self.fclock[slot] = clock

    def revoke_filters(self, slot: int, remote_is_write: bool) -> None:
        """A remote race check revokes filters and write permission."""
        clear = F_WRITE_FILTER | F_WRITE_PERMISSION
        if remote_is_write:
            clear |= F_READ_FILTER
        self.flags[slot] &= ~clear & 0xFF

    # -- recording --------------------------------------------------------

    def record_access(
        self, slot: int, ts: int, word: int, is_write: bool
    ) -> Optional[Tuple[int, int, int]]:
        """Record a local access at timestamp ``ts``.

        Returns the retired oldest entry as ``(ts, rmask, wmask)`` when
        allocating a new entry overflowed the per-line budget, else None.
        """
        if ts > _TS_MAX:
            raise ConfigError("timestamp %d overflows the flat store" % ts)
        base = slot * self.entries_per_line
        n = self.count[slot]
        bit = 1 << word
        for e in range(base, base + n):
            if self.ts[e] == ts:
                if is_write:
                    self.wmask[e] |= bit
                else:
                    self.rmask[e] |= bit
                return None
        retired = None
        if n == self.entries_per_line:
            last = base + n - 1
            retired = (self.ts[last], self.rmask[last], self.wmask[last])
        else:
            self.count[slot] = n + 1
        # Shift entries down one position; the new entry goes in front.
        tsa, rma, wma = self.ts, self.rmask, self.wmask
        for e in range(base + min(n, self.entries_per_line - 1), base, -1):
            tsa[e] = tsa[e - 1]
            rma[e] = rma[e - 1]
            wma[e] = wma[e - 1]
        tsa[base] = ts
        if is_write:
            rma[base] = 0
            wma[base] = bit
        else:
            rma[base] = bit
            wma[base] = 0
        return retired

    def retire_all(self, slot: int) -> List[Tuple[int, int, int]]:
        """Remove and return all entries newest-first (line retirement)."""
        base = slot * self.entries_per_line
        retired = [
            (self.ts[e], self.rmask[e], self.wmask[e])
            for e in range(base, base + self.count[slot])
        ]
        self.count[slot] = 0
        self.flags[slot] &= ~_F_FILTERS & 0xFF
        return retired

    # -- introspection -----------------------------------------------------

    def entries(self, slot: int) -> List[Tuple[int, int, int]]:
        """Resident entries as ``(ts, rmask, wmask)`` tuples, newest first."""
        base = slot * self.entries_per_line
        return [
            (self.ts[e], self.rmask[e], self.wmask[e])
            for e in range(base, base + self.count[slot])
        ]

    def data_valid(self, slot: int) -> bool:
        return bool(self.flags[slot] & F_DATA_VALID)

    def write_permission(self, slot: int) -> bool:
        return bool(self.flags[slot] & F_WRITE_PERMISSION)

    def read_filter(self, slot: int) -> bool:
        return bool(self.flags[slot] & F_READ_FILTER)

    def write_filter(self, slot: int) -> bool:
        return bool(self.flags[slot] & F_WRITE_FILTER)

    def newest_timestamp(self, slot: int) -> Optional[int]:
        if not self.count[slot]:
            return None
        return self.ts[slot * self.entries_per_line]

    def oldest_timestamp(self, slot: int) -> Optional[int]:
        n = self.count[slot]
        if not n:
            return None
        return self.ts[slot * self.entries_per_line + n - 1]

    # -- the walker's pass -------------------------------------------------

    def retire_stale(self, slot, threshold, memts):
        """Retire entries with ``ts < threshold`` into ``memts``.

        Returns ``(n_retired, min_kept_ts_or_None)``.  Entries are
        examined newest-first (matching the object walker's fold order);
        surviving entries keep their relative order.  Any retirement
        clears the slot's filter bits (lost history voids the line's
        no-conflict guarantee).
        """
        base = slot * self.entries_per_line
        n = self.count[slot]
        kept = base
        n_retired = 0
        minimum: Optional[int] = None
        tsa, rma, wma = self.ts, self.rmask, self.wmask
        for e in range(base, base + n):
            t = tsa[e]
            if t < threshold:
                memts.fold_raw(t, rma[e] != 0, wma[e] != 0)
                n_retired += 1
            else:
                if minimum is None or t < minimum:
                    minimum = t
                if kept != e:
                    tsa[kept] = t
                    rma[kept] = rma[e]
                    wma[kept] = wma[e]
                kept += 1
        if n_retired:
            self.count[slot] = kept - base
            self.flags[slot] &= ~_F_FILTERS & 0xFF
        return n_retired, minimum
