"""CORD performance-overhead estimation (Figure 11).

``estimate_overhead`` runs two timing passes over the same trace:

* **Baseline** -- the machine with no order-recording or detection
  support: access latencies by classification plus queueing on the
  address/timestamp bus for ordinary coherence transactions.
* **CORD** -- the same, plus CORD's extra address/timestamp-bus traffic:
  race-check requests for accesses that were *not* already bus
  transactions (a miss's request carries the clock for free, Section
  2.7.2), and memory-timestamp update broadcasts; plus order-log write
  bandwidth on the data bus.

Contention is estimated per window of events with an M/D/1-style queueing
term, which captures the paper's key effect: bursts of timestamp changes
(sync-heavy phases) produce bursts of race checks and measurable -- but
small -- slowdowns, while quiet phases add nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector
from repro.timingsim.datacache import (
    AccessKind,
    DataCacheModel,
)
from repro.timingsim.params import TimingParams
from repro.trace.stream import Trace

#: Utilization cap keeping the queueing term finite.
_MAX_UTILIZATION = 0.95


@dataclass
class OverheadResult:
    """Timing-pass output for one trace."""

    baseline_cycles: float
    cord_cycles: float
    n_windows: int = 0
    extra_check_tx: int = 0
    memts_tx: int = 0
    base_addr_tx: int = 0
    peak_window_utilization: float = 0.0
    window_overheads: List[float] = field(default_factory=list)

    @property
    def relative_time(self) -> float:
        """Execution time with CORD relative to baseline (Figure 11's y)."""
        if self.baseline_cycles <= 0:
            return 1.0
        return self.cord_cycles / self.baseline_cycles

    @property
    def overhead(self) -> float:
        return self.relative_time - 1.0


def _access_cost(kind: AccessKind, params: TimingParams) -> float:
    if kind == AccessKind.L1_HIT:
        return params.l1_hit_cycles
    if kind in (AccessKind.L2_HIT, AccessKind.UPGRADE):
        return params.l2_hit_cycles
    if kind == AccessKind.CACHE_TO_CACHE:
        return params.cache_to_cache_cycles
    return params.memory_cycles


def _queue_delay(utilization: float, service: float) -> float:
    """Mean M/D/1 waiting time for service rate 1/service."""
    u = min(utilization, _MAX_UTILIZATION)
    return service * u / (2.0 * (1.0 - u))


def estimate_overhead(
    trace: Trace,
    params: Optional[TimingParams] = None,
    cord_config: Optional[CordConfig] = None,
) -> OverheadResult:
    """Estimate relative execution time with CORD for one trace."""
    params = params or TimingParams()
    cord_config = cord_config or CordConfig()
    n_proc = cord_config.n_processors

    classified = DataCacheModel(n_proc, params).classify(trace)

    # Per-event CORD bus activity, sampled from the live detector.
    detector = CordDetector(cord_config, trace.n_threads)
    extra_check = [False] * len(trace.events)
    memts_tx = [0] * len(trace.events)
    for i, event in enumerate(trace.events):
        checks_before = detector.race_checks
        broadcasts_before = detector.memory_ts.update_broadcasts
        detector.process(event)
        if detector.race_checks > checks_before:
            extra_check[i] = True
        memts_tx[i] = (
            detector.memory_ts.update_broadcasts - broadcasts_before
        )
    log_bytes = detector.recorder.log.size_bytes

    # Amortize compute instructions over each thread's events.
    events_per_thread = [0] * trace.n_threads
    for event in trace.events:
        events_per_thread[event.thread] += 1
    compute_per_event = [0.0] * trace.n_threads
    for t in range(trace.n_threads):
        compute = trace.final_icounts[t] - events_per_thread[t]
        if events_per_thread[t]:
            compute_per_event[t] = (
                compute * params.compute_cpi / events_per_thread[t]
            )

    result = OverheadResult(baseline_cycles=0.0, cord_cycles=0.0)
    service = params.addr_bus_service_cycles
    window = params.window_events

    for start in range(0, len(trace.events), window):
        end = min(start + window, len(trace.events))
        per_proc = [0.0] * n_proc
        base_tx = 0
        cord_tx = 0
        for i in range(start, end):
            info = classified[i]
            event = trace.events[i]
            per_proc[info.processor] += (
                _access_cost(info.kind, params)
                + compute_per_event[event.thread]
            )
            base_tx += info.addr_bus_tx
            cord_tx += info.addr_bus_tx + memts_tx[i]
            if extra_check[i] and not info.addr_bus_tx:
                cord_tx += 1
        duration = max(per_proc) if per_proc else 0.0
        if duration <= 0.0:
            continue
        u_base = base_tx * service / duration
        u_cord = cord_tx * service / duration
        base_delay = base_tx * _queue_delay(u_base, service) / n_proc
        cord_delay = base_tx * _queue_delay(u_cord, service) / n_proc
        base_window = duration + base_delay
        cord_window = duration + cord_delay
        result.baseline_cycles += base_window
        result.cord_cycles += cord_window
        result.n_windows += 1
        result.base_addr_tx += base_tx
        result.extra_check_tx += cord_tx - base_tx
        result.peak_window_utilization = max(
            result.peak_window_utilization, u_cord
        )
        result.window_overheads.append(
            cord_window / base_window - 1.0 if base_window else 0.0
        )

    # Order-log writes consume data-bus bandwidth (8 bytes per entry);
    # charge them as a uniform addition to CORD time.
    result.cord_cycles += (
        log_bytes / params.log_bytes_per_data_bus_cycle
    )
    result.memts_tx = sum(memts_tx)
    return result
