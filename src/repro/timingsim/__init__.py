"""Approximate CMP timing model for the overhead experiment (Figure 11).

The paper's 0.4 %-average / 3 %-worst-case overhead figure comes from a
cycle-accurate simulator; the *mechanism* behind the overhead is simple and
is what this package models:

* CORD never delays cache hits (the paper explicitly does not add hit
  latency) and its race-check requests ride the less-utilized
  **address/timestamp bus**, which runs at half the data-bus frequency.
* Overhead therefore appears only as *contention*: bursts of race-check
  and memory-timestamp-update transactions lengthen the queueing delay of
  ordinary coherence transactions (misses, upgrades) that share that bus.
  Cholesky is the paper's worst case precisely because frequent
  synchronization causes bursts of timestamp changes and subsequent
  race-check requests.

We replay a trace through a private L1/L2 data-presence model to classify
accesses (L1 hit / L2 hit / cache-to-cache / memory) and charge latencies
from the paper's Section 3.1 parameters, then apply a windowed
M/D/1-style queueing estimate on the address/timestamp bus with and
without CORD's extra transactions.  Absolute cycle counts are approximate;
the *relative* execution-time ratio (what Figure 11 plots) is the output.
"""

from repro.timingsim.params import TimingParams
from repro.timingsim.datacache import AccessKind, DataCacheModel
from repro.timingsim.detailed import (
    DetailedResult,
    estimate_overhead_detailed,
)
from repro.timingsim.overhead import OverheadResult, estimate_overhead

__all__ = [
    "AccessKind",
    "DataCacheModel",
    "DetailedResult",
    "OverheadResult",
    "TimingParams",
    "estimate_overhead",
    "estimate_overhead_detailed",
]
