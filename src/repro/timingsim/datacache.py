"""Private L1/L2 data-presence model for access classification.

The timing model needs to know, for every trace event, where the data was
found: local L1, local L2, a remote cache (cache-to-cache transfer), or
main memory -- and whether the access needed an address-bus transaction
(miss or write upgrade).  This module replays a trace through per-processor
two-level LRU caches with write-invalidate coherence and produces exactly
that classification.

It deliberately reuses :class:`~repro.cachesim.cache.MetadataCache` with a
trivial "present/valid" payload: hit/miss behavior is a pure function of
geometry and access order, identical for data and metadata.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.cachesim.cache import CacheGeometry, MetadataCache
from repro.detectors.base import default_thread_to_processor
from repro.timingsim.params import TimingParams
from repro.trace.stream import Trace


class AccessKind(enum.IntEnum):
    """Where an access was satisfied."""

    L1_HIT = 0
    L2_HIT = 1
    CACHE_TO_CACHE = 2
    MEMORY = 3
    UPGRADE = 4  # write hit to a shared line: invalidation only


class _LineState:
    """Presence payload: data-valid flag (invalidated by remote writes)."""

    __slots__ = ("data_valid",)

    def __init__(self):
        self.data_valid = True


@dataclass
class ClassifiedEvent:
    """Classification of one trace event for the timing pass."""

    __slots__ = ("index", "processor", "kind", "addr_bus_tx")

    index: int
    processor: int
    kind: AccessKind
    addr_bus_tx: int  # address-bus transactions this access caused


class DataCacheModel:
    """Per-processor L1+L2 presence model with write-invalidate snooping."""

    def __init__(self, n_processors: int, params: TimingParams):
        self.params = params
        self.n_processors = n_processors
        l1_geom = CacheGeometry(
            params.l1_size, params.line_size, params.associativity
        )
        l2_geom = CacheGeometry(
            params.l2_size, params.line_size, params.associativity
        )
        self._l1 = [
            MetadataCache(l1_geom, _LineState) for _ in range(n_processors)
        ]
        self._l2 = [
            MetadataCache(l2_geom, _LineState) for _ in range(n_processors)
        ]
        self.line_mask = ~(params.line_size - 1)
        # Sharers bookkeeping: line -> set of processors with a valid copy.
        self._sharers = {}

    def classify(self, trace: Trace) -> List[ClassifiedEvent]:
        """Replay ``trace`` and classify every event."""
        thread_proc = default_thread_to_processor(
            trace.n_threads, self.n_processors
        )
        out: List[ClassifiedEvent] = []
        for event in trace.events:
            processor = thread_proc[event.thread]
            out.append(self._access(event, processor))
        return out

    def _access(self, event, processor: int) -> ClassifiedEvent:
        line = event.address & self.line_mask
        is_write = event.is_write
        l1 = self._l1[processor]
        l2 = self._l2[processor]
        sharers = self._sharers.setdefault(line, set())

        l1_state = l1.peek(line)
        l2_state = l2.peek(line)
        l1_valid = l1_state is not None and l1_state.data_valid
        l2_valid = l2_state is not None and l2_state.data_valid

        addr_tx = 0
        if l1_valid or l2_valid:
            kind = AccessKind.L1_HIT if l1_valid else AccessKind.L2_HIT
            if is_write and len(sharers - {processor}) > 0:
                # Write to a shared line: invalidate other copies.
                kind = AccessKind.UPGRADE
                addr_tx = 1
                self._invalidate_others(line, processor, sharers)
        else:
            addr_tx = 1
            remote_valid = bool(sharers - {processor})
            kind = (
                AccessKind.CACHE_TO_CACHE
                if remote_valid
                else AccessKind.MEMORY
            )
            if is_write:
                self._invalidate_others(line, processor, sharers)

        # Fill/refresh local hierarchy (evictions are presence-only).
        state, _ = l2.access(line)
        state.data_valid = True
        state, _ = l1.access(line)
        state.data_valid = True
        sharers.add(processor)
        return ClassifiedEvent(event.index, processor, kind, addr_tx)

    def _invalidate_others(self, line, processor, sharers) -> None:
        for other in list(sharers):
            if other == processor:
                continue
            self._l1[other].invalidate_data(line)
            self._l2[other].invalidate_data(line)
            sharers.discard(other)
