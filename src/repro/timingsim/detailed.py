"""Event-driven timing model (cross-validation for Figure 11).

The default overhead estimate (:mod:`repro.timingsim.overhead`) is an
analytic windowed-queueing model.  This module is its event-driven
counterpart: explicit per-processor timelines and first-come-first-served
bus reservations, so contention emerges from actual transaction timing
instead of an M/D/1 term.

Model:

* each processor advances a ``ready_time``; a trace event issues when its
  processor is ready;
* misses/upgrades reserve the **address/timestamp bus** (one service slot)
  and, when data moves, the **data bus** (one line transfer); queueing
  delay is the gap between issue and grant;
* the CORD pass additionally reserves address-bus slots for race-check
  requests and memory-timestamp update broadcasts.  Checks are
  fire-and-forget -- the paper retires instructions without waiting --
  but a check granted later than ``retire_slack`` cycles after issue
  stalls retirement by the excess (the paper's "rare" retirement delay);
* order-log writes consume data-bus slots amortized per entry.

Both models are compared in ``benchmarks/bench_timing_models.py``: they
must agree on which applications pay the most (the shape), not on exact
percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector
from repro.timingsim.datacache import AccessKind, DataCacheModel
from repro.timingsim.params import TimingParams

#: Cycles of slack before an in-flight race check stalls retirement.
RETIRE_SLACK = 64.0


@dataclass
class DetailedResult:
    """Event-driven timing outcome for one trace."""

    baseline_cycles: float
    cord_cycles: float
    retirement_stalls: int
    addr_bus_busy_baseline: float
    addr_bus_busy_cord: float

    @property
    def relative_time(self) -> float:
        if self.baseline_cycles <= 0:
            return 1.0
        return self.cord_cycles / self.baseline_cycles

    @property
    def overhead(self) -> float:
        return self.relative_time - 1.0


def _access_latency(kind: AccessKind, params: TimingParams) -> float:
    if kind == AccessKind.L1_HIT:
        return params.l1_hit_cycles
    if kind in (AccessKind.L2_HIT, AccessKind.UPGRADE):
        return params.l2_hit_cycles
    if kind == AccessKind.CACHE_TO_CACHE:
        return params.cache_to_cache_cycles
    return params.memory_cycles


def _run_pass(
    trace,
    classified,
    params: TimingParams,
    compute_per_event: List[float],
    thread_proc: List[int],
    check_flags: Optional[List[bool]] = None,
    memts_tx: Optional[List[int]] = None,
    log_entries: int = 0,
):
    """Two-phase bus simulation.

    Phase 1 computes each event's *uncontended* issue time from its
    processor's timeline.  Phase 2 sorts every address-bus request by
    issue time, assigns FCFS grants, and charges each event's wait:
    blocking transactions (misses/upgrades) extend their processor's
    timeline; race checks only stall when the grant lags past the
    retirement slack.  Second-order feedback (waits shifting later issue
    times) is deliberately ignored -- a documented approximation that
    keeps the pass linear.
    """
    n_proc = max(thread_proc) + 1 if thread_proc else 1
    service = params.addr_bus_service_cycles

    # Phase 1: uncontended timelines and request list.
    ready = [0.0] * n_proc
    issues = [0.0] * len(trace.events)
    requests = []  # (issue_time, event_index, blocking, count)
    for i, event in enumerate(trace.events):
        info = classified[i]
        processor = info.processor
        issue = ready[processor]
        issues[i] = issue
        latency = _access_latency(info.kind, params)
        if info.addr_bus_tx:
            requests.append((issue, i, True, 1))
            if info.kind in (AccessKind.CACHE_TO_CACHE,
                             AccessKind.MEMORY):
                latency += params.data_bus_cycles_per_line
        if check_flags is not None:
            extra = memts_tx[i] if memts_tx else 0
            if check_flags[i] and not info.addr_bus_tx:
                requests.append((issue, i, False, 1 + extra))
            elif extra:
                requests.append((issue, i, False, extra))
        ready[processor] = (
            issue + latency + compute_per_event[event.thread]
        )

    # Phase 2: FCFS grants in issue order; charge waits back.
    requests.sort(key=lambda r: (r[0], r[1]))
    free_at = 0.0
    busy = 0.0
    waits = {}
    stalls = 0
    for issue, index, blocking, count in requests:
        grant = max(issue, free_at)
        free_at = grant + service * count
        busy += service * count
        wait = grant - issue
        if blocking:
            waits[index] = wait
        elif wait > RETIRE_SLACK:
            waits[index] = wait - RETIRE_SLACK
            stalls += 1

    # Charge waits to processor finish times.
    extra_per_proc = [0.0] * n_proc
    for index, wait in waits.items():
        extra_per_proc[classified[index].processor] += wait
    finish = [ready[p] + extra_per_proc[p] for p in range(n_proc)]
    total = max(finish) if finish else 0.0
    if log_entries:
        total += (
            log_entries * 8 / params.log_bytes_per_data_bus_cycle / n_proc
        )
    return total, stalls, busy


def estimate_overhead_detailed(
    trace,
    params: Optional[TimingParams] = None,
    cord_config: Optional[CordConfig] = None,
) -> DetailedResult:
    """Event-driven relative execution time with CORD for one trace."""
    params = params or TimingParams()
    cord_config = cord_config or CordConfig()
    n_proc = cord_config.n_processors

    model = DataCacheModel(n_proc, params)
    classified = model.classify(trace)
    thread_proc = [t % n_proc for t in range(trace.n_threads)]

    events_per_thread = [0] * trace.n_threads
    for event in trace.events:
        events_per_thread[event.thread] += 1
    compute_per_event = [0.0] * trace.n_threads
    for t in range(trace.n_threads):
        compute = trace.final_icounts[t] - events_per_thread[t]
        if events_per_thread[t]:
            compute_per_event[t] = (
                compute * params.compute_cpi / events_per_thread[t]
            )

    detector = CordDetector(cord_config, trace.n_threads)
    check_flags = [False] * len(trace.events)
    memts_tx = [0] * len(trace.events)
    for i, event in enumerate(trace.events):
        checks_before = detector.race_checks
        broadcasts_before = detector.memory_ts.update_broadcasts
        detector.process(event)
        check_flags[i] = detector.race_checks > checks_before
        memts_tx[i] = (
            detector.memory_ts.update_broadcasts - broadcasts_before
        )
    log_entries = len(detector.recorder.log.entries)

    baseline, _stalls, busy_base = _run_pass(
        trace, classified, params, compute_per_event, thread_proc
    )
    # Classification is stateful; re-run it fresh for the CORD pass.
    classified2 = DataCacheModel(n_proc, params).classify(trace)
    cord, stalls, busy_cord = _run_pass(
        trace,
        classified2,
        params,
        compute_per_event,
        thread_proc,
        check_flags=check_flags,
        memts_tx=memts_tx,
        log_entries=log_entries,
    )
    return DetailedResult(
        baseline_cycles=baseline,
        cord_cycles=cord,
        retirement_stalls=stalls,
        addr_bus_busy_baseline=busy_base,
        addr_bus_busy_cord=busy_cord,
    )
