"""Timing parameters, following the paper's Section 3.1 machine.

The simulated machine: 4-issue out-of-order 4 GHz cores (Pentium-4-like),
private 8 KB L1 and 32 KB L2, a 128-bit on-chip data bus at 1 GHz, an
address/timestamp bus at half the data-bus frequency (Section 4.1), a
200 MHz quad-pumped 64-bit memory bus, 600-processor-cycle round-trip
memory latency, and 20-cycle L2-to-L2 cache-to-cache round trips.

All latencies below are in *processor* (4 GHz) cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class TimingParams:
    """Latency/occupancy constants for the timing model.

    Attributes:
        l1_hit_cycles: effective exposed latency of an L1 hit (pipelined).
        l2_hit_cycles: L1-miss/L2-hit latency.
        cache_to_cache_cycles: L2-to-L2 round trip (paper: 20).
        memory_cycles: round-trip main memory latency (paper: 600).
        compute_cpi: cycles per compute instruction unit.
        addr_bus_service_cycles: occupancy of one transaction on the
            address/timestamp bus, in CPU cycles.  The bus runs at 500 MHz
            = 1/8 CPU frequency; one bus slot = 8 CPU cycles.
        data_bus_cycles_per_line: occupancy of a 64-byte line transfer on
            the 128-bit 1 GHz data bus (4 bus cycles = 16 CPU cycles).
        log_bytes_per_data_bus_cycle: log write bandwidth accounting.
        window_events: trace window size for the burst-aware contention
            estimate.
        l1_size / l2_size / line_size / associativity: data cache shape.
    """

    l1_hit_cycles: float = 1.0
    l2_hit_cycles: float = 10.0
    cache_to_cache_cycles: float = 20.0
    memory_cycles: float = 600.0
    compute_cpi: float = 1.0
    addr_bus_service_cycles: float = 8.0
    data_bus_cycles_per_line: float = 16.0
    log_bytes_per_data_bus_cycle: float = 16.0
    window_events: int = 500
    l1_size: int = 8 * 1024
    l2_size: int = 32 * 1024
    line_size: int = 64
    associativity: int = 8

    def __post_init__(self):
        if self.window_events < 1:
            raise ConfigError("window_events must be >= 1")
        for name in (
            "l1_hit_cycles",
            "l2_hit_cycles",
            "cache_to_cache_cycles",
            "memory_cycles",
            "compute_cpi",
            "addr_bus_service_cycles",
            "data_bus_cycles_per_line",
        ):
            if getattr(self, name) < 0:
                raise ConfigError("%s must be >= 0" % name)
