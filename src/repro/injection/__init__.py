"""Fault injection: removing dynamic synchronization instances.

Reproduces Section 3.4's error model: a single dynamic instance of
synchronization is removed per run, chosen uniformly at random over all
dynamic lock and flag-wait invocations.  A removed lock instance takes its
matching unlock with it; barrier synchronization is composed of mutex and
flag primitives, each of whose dynamic invocations is a separate removable
instance (removing a whole barrier call would create thousands of races
and defeat the elusive-bug model, as the paper notes).

* :mod:`repro.injection.injector` -- the interceptors.
* :mod:`repro.injection.campaign` -- many-run campaigns over workloads and
  detector suites, producing the per-app detection statistics behind
  Figures 10 and 12-17.
"""

from repro.injection.injector import (
    InjectionInterceptor,
    InjectionSpec,
    ReplayInjection,
    count_sync_instances,
)
from repro.injection.campaign import (
    CampaignConfig,
    CampaignResult,
    RunResult,
    run_campaign,
    run_injected_once,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "InjectionInterceptor",
    "InjectionSpec",
    "ReplayInjection",
    "RunResult",
    "count_sync_instances",
    "run_campaign",
    "run_injected_once",
]
