"""Interceptors that remove one dynamic synchronization instance.

The paper's injector "randomly generates a number N and then injects a
fault into the N-th dynamic instance of synchronization".  Dynamic
numbering follows the global arrival order of injectable primitive
invocations (lock calls and flag-wait calls) in the running interleaving.

Because replay re-executes the program under log-directed scheduling, the
*global* arrival order of concurrent sync instances can legally differ
between recording and replay.  The interceptor therefore records which
instance it removed in interleaving-independent form -- ``(thread,
per-thread instance index)`` -- and :class:`ReplayInjection` re-applies
exactly that removal during replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigError
from repro.engine.executor import run_program
from repro.engine.interceptor import CountingInterceptor, SyncInterceptor
from repro.program.builder import Program
from repro.program.ops import LockOp, Op


@dataclass(frozen=True)
class InjectionSpec:
    """Interleaving-independent identity of a removed sync instance."""

    thread: int
    per_thread_index: int
    kind: str  # "lock" or "wait"
    address: int


class InjectionInterceptor(SyncInterceptor):
    """Remove the ``target_index``-th injectable instance (global order).

    Attributes:
        removed: the :class:`InjectionSpec` of the removed instance, or
            None if the run had fewer instances than ``target_index + 1``
            (possible because injection itself perturbs control flow, e.g.
            task-queue runs; such runs count as "no injection landed").
    """

    def __init__(self, target_index: int):
        if target_index < 0:
            raise ConfigError("target index must be >= 0")
        self.target_index = target_index
        self.seen = 0
        self._per_thread_seen = {}
        self.removed: Optional[InjectionSpec] = None

    def on_sync_instance(self, thread: int, op: Op) -> bool:
        index = self.seen
        self.seen += 1
        per_thread = self._per_thread_seen.get(thread, 0)
        self._per_thread_seen[thread] = per_thread + 1
        if index != self.target_index:
            return False
        self.removed = InjectionSpec(
            thread=thread,
            per_thread_index=per_thread,
            kind="lock" if isinstance(op, LockOp) else "wait",
            address=op.address,
        )
        return True


class ReplayInjection(SyncInterceptor):
    """Re-apply a recorded removal during replay (per-thread indexed)."""

    def __init__(self, spec: InjectionSpec):
        self.spec = spec
        self._per_thread_seen = {}
        self.applied = False

    def on_sync_instance(self, thread: int, op: Op) -> bool:
        per_thread = self._per_thread_seen.get(thread, 0)
        self._per_thread_seen[thread] = per_thread + 1
        if (
            thread == self.spec.thread
            and per_thread == self.spec.per_thread_index
        ):
            self.applied = True
            return True
        return False


def count_sync_instances(program: Program, seed: int) -> int:
    """Dry-run the program and count injectable dynamic sync instances.

    The campaign uses this to size the uniform draw for the injection
    index, mirroring the paper's uniform-over-dynamic-instances choice.
    (Run-to-run instance counts are interleaving-dependent for task-queue
    workloads; drawing against the same seed's dry run keeps the draw
    aligned with the run it targets.)
    """
    counter = CountingInterceptor()
    run_program(program, seed=seed, interceptor=counter)
    return counter.count
