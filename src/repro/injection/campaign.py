"""Injection campaigns: many runs, one removed sync instance each.

This is the experimental protocol of Sections 3.4 and 4.2:

1. Build the workload program and count its dynamic sync instances with a
   dry run.
2. For each of ``n_runs`` runs: draw a uniform target instance, execute
   with that instance removed under a per-run scheduler seed, and hand the
   resulting trace to every detector in the suite.
3. A run *manifests* the injected problem when the Ideal oracle flags at
   least one data race (Figure 10's percentage).  A detector *detects the
   problem* when it flags at least one race in a manifesting run
   (Figure 12/14/16); its *raw* count is how many racy accesses it flagged
   (Figure 13/15/17).

Unlike the paper -- which had to give each configuration its own hardware
run and therefore its own interleaving -- we evaluate every detector on
the *same* trace per run, which removes cross-configuration interleaving
noise (the paper's Volrend anomaly, where CORD "found two more problems
than Ideal", is an artifact of that noise).

The campaign also enforces the paper's headline soundness claim on every
run: no detector may flag an access the Ideal oracle does not flag
(no false positives).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.detectors.base import AccessId, DetectionOutcome
from repro.resilience.guard import (
    guarded_outcomes,
    guarded_outcomes_batch,
    mark_plan_sharing,
)
from repro.resilience.journal import TaskCheckpoint
from repro.detectors.registry import DetectorSpec, standard_suite
from repro.engine.executor import run_program
from repro.injection.injector import (
    InjectionInterceptor,
    InjectionSpec,
    count_sync_instances,
)
from repro.program.builder import Program
from repro.trace.packed import PackedTrace
from repro.trace.store import PackedTraceStore

#: A program factory: run seed -> fresh Program (workload shapes may be
#: seed-dependent; most workloads ignore the argument).
ProgramFactory = Callable[[int], Program]


@dataclass
class RunResult:
    """Outcome of one injected run across all detectors."""

    run_index: int
    seed: int
    target_index: int
    injected: bool
    removed: Optional[InjectionSpec]
    hung: bool
    n_events: int
    flagged: Dict[str, int] = field(default_factory=dict)
    problem: Dict[str, bool] = field(default_factory=dict)
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def manifested(self) -> bool:
        """Did the injected problem dynamically manifest (Ideal verdict)?"""
        return self.problem.get("Ideal", False)


@dataclass
class CampaignConfig:
    """Parameters of one injection campaign."""

    n_runs: int = 20
    base_seed: int = 2006
    detectors: Optional[Sequence[DetectorSpec]] = None
    check_soundness: bool = True
    switch_probability: float = 0.1

    def detector_suite(self) -> Sequence[DetectorSpec]:
        return (
            self.detectors
            if self.detectors is not None
            else standard_suite()
        )


@dataclass
class CampaignResult:
    """All runs of a campaign plus derived Figure-level statistics."""

    workload: str
    detector_names: List[str]
    runs: List[RunResult] = field(default_factory=list)
    sync_instances: int = 0

    # -- Figure 10 ----------------------------------------------------------

    @property
    def n_manifested(self) -> int:
        return sum(1 for run in self.runs if run.manifested)

    @property
    def manifestation_rate(self) -> float:
        """Fraction of injections that produced >= 1 data race (Fig. 10)."""
        if not self.runs:
            return 0.0
        return self.n_manifested / len(self.runs)

    # -- Figures 12/14/16 ------------------------------------------------------

    def problems_detected(self, detector: str) -> int:
        return sum(
            1
            for run in self.runs
            if run.manifested and run.problem.get(detector, False)
        )

    def problem_rate(self, detector: str, baseline: str = "Ideal") -> float:
        """Problem detection rate of ``detector`` relative to ``baseline``."""
        base = self.problems_detected(baseline)
        if base == 0:
            return 0.0
        return self.problems_detected(detector) / base

    # -- Figures 13/15/17 -------------------------------------------------------

    def races_detected(self, detector: str) -> int:
        return sum(run.flagged.get(detector, 0) for run in self.runs)

    def raw_rate(self, detector: str, baseline: str = "Ideal") -> float:
        """Raw race detection rate relative to ``baseline``."""
        base = self.races_detected(baseline)
        if base == 0:
            return 0.0
        return self.races_detected(detector) / base


@dataclass
class RecordedRun:
    """One recorded injected execution, not yet analyzed.

    The record-once / analyze-many split: recording (the functional
    simulation) happens exactly once per (workload, seed, injection)
    triple and yields this object; any number of detector
    configurations then analyze the shared packed trace.  Seeds and
    targets derive only from ``(base_seed, workload, run_index)``, so
    the recorded trace -- and therefore every report computed from it --
    is bit-identical no matter which detector set or sweep mode asked
    for it.
    """

    run_index: int
    seed: int
    target_index: int
    injected: bool
    removed: Optional[InjectionSpec]
    hung: bool
    n_threads: int
    packed: PackedTrace


def _recorded_from_entry(
    run_index: int,
    seed: int,
    target_index: int,
    packed: PackedTrace,
    extra: Dict,
) -> RecordedRun:
    return RecordedRun(
        run_index=run_index,
        seed=seed,
        target_index=target_index,
        injected=extra["injected"],
        removed=extra["removed"],
        hung=packed.hung,
        n_threads=extra["n_threads"],
        packed=packed,
    )


def record_injected_once(
    factory: ProgramFactory,
    seed: int,
    target_index: int,
    run_index: int = 0,
    switch_probability: float = 0.1,
    store: Optional[PackedTraceStore] = None,
    namespace: str = "run",
    shared=None,
) -> RecordedRun:
    """Record one injected run (or load it from the trace store).

    With a ``store``, the simulation is keyed by
    ``(seed, target_index, switch_probability)`` under the caller's
    ``namespace`` (workload plus parameters); a hit skips the simulation
    entirely and replays the packed trace from disk.

    With a ``shared`` map
    (:class:`~repro.trace.sharedmem.SharedTraceMap`, keyed by the same
    components tuple), the recording is served zero-copy out of a
    shared-memory segment the parent published -- checked *before* the
    store, since it costs neither I/O nor a decode.  Both layers
    degrade to the next on any failure (digest mismatch, vanished
    segment, corrupt entry), ending at re-simulation.
    """
    components = (seed, target_index, switch_probability)
    if shared is not None:
        hit = shared.get(components)
        if hit is not None:
            packed, extra = hit
            return _recorded_from_entry(
                run_index, seed, target_index, packed, extra
            )
    if store is not None:
        hit = store.load_run(namespace, components)
        if hit is not None:
            packed, extra = hit
            return _recorded_from_entry(
                run_index, seed, target_index, packed, extra
            )
    program = factory(seed)
    interceptor = InjectionInterceptor(target_index)
    trace = run_program(
        program,
        seed=seed,
        interceptor=interceptor,
        switch_probability=switch_probability,
    )
    packed = trace.packed
    recorded = RecordedRun(
        run_index=run_index,
        seed=seed,
        target_index=target_index,
        injected=interceptor.removed is not None,
        removed=interceptor.removed,
        hung=trace.hung,
        n_threads=program.n_threads,
        packed=packed,
    )
    if store is not None:
        store.store_run(
            namespace,
            components,
            packed,
            {
                "injected": recorded.injected,
                "removed": recorded.removed,
                "n_threads": recorded.n_threads,
            },
        )
    return recorded


#: Kept under its historical name: the sharing heuristic now lives with
#: the degradation ladder (the other consumer of the whole-suite view).
_mark_plan_sharing = mark_plan_sharing


def campaign_sizing_seed(workload_name: str, base_seed: int) -> int:
    """The sizing-run seed of a campaign.

    Factored out of :func:`_run_campaign` (the forks are name-based and
    order-independent, so recreating the rng here derives the identical
    seed) so planners can find the cached sync-instance count without
    running anything.
    """
    rng = DeterministicRng(base_seed, "campaign/%s" % workload_name)
    return rng.fork("sizing").randint(0, 2**31 - 1)


def campaign_run_keys(
    workload_name: str,
    config: CampaignConfig,
    instance_count: int,
) -> List[Tuple[int, int, int]]:
    """The ``(run_index, seed, target)`` schedule of a campaign.

    Exactly the derivation :func:`_run_campaign` performs (same rng
    construction, same draw order within each run fork), exposed so the
    pooled runner can pre-compute every run's store key -- and publish
    the warm recordings over shared memory -- without consuming the
    campaign's own rng.
    """
    rng = DeterministicRng(config.base_seed, "campaign/%s" % workload_name)
    keys = []
    for run_index in range(config.n_runs):
        run_rng = rng.fork("run%d" % run_index)
        seed = run_rng.randint(0, 2**31 - 1)
        target = run_rng.randrange(instance_count)
        keys.append((run_index, seed, target))
    return keys


def plan_campaign_runs(
    workload_name: str,
    config: Optional[CampaignConfig],
    trace_store: PackedTraceStore,
    namespace: str,
) -> Optional[List[Tuple]]:
    """Store components for every run of a campaign, or ``None``.

    ``None`` means the sizing value is not cached yet: the workload is
    cold, nothing is recorded, and there is nothing to publish.  The
    returned tuples are exactly the keys
    :func:`record_injected_once` looks up.
    """
    config = config or CampaignConfig()
    sizing_seed = campaign_sizing_seed(workload_name, config.base_seed)
    instance_count = trace_store.load_value(
        namespace, ("sync_instances", sizing_seed)
    )
    if not instance_count:
        return None
    return [
        (seed, target, config.switch_probability)
        for _run_index, seed, target in campaign_run_keys(
            workload_name, config, instance_count
        )
    ]


def detectors_digest(
    detectors: Sequence[DetectorSpec], check_soundness: bool
) -> str:
    """Digest identifying a detector suite's analysis outputs.

    Folded into the store keys of per-config outcome slices and
    committed run results, so a different detector set (or soundness
    setting) misses cleanly instead of resuming into foreign results.
    """
    ident = repr((
        tuple(spec.name for spec in detectors), bool(check_soundness),
    ))
    return hashlib.sha256(ident.encode()).hexdigest()[:12]


def _fresh_run_result(recorded: RecordedRun) -> RunResult:
    return RunResult(
        run_index=recorded.run_index,
        seed=recorded.seed,
        target_index=recorded.target_index,
        injected=recorded.injected,
        removed=recorded.removed,
        hung=recorded.hung,
        n_events=len(recorded.packed),
    )


def analyze_recorded(
    recorded: RecordedRun,
    detectors: Sequence[DetectorSpec],
    check_soundness: bool = True,
    store: Optional[PackedTraceStore] = None,
    namespace: Optional[str] = None,
    switch_probability: Optional[float] = None,
    task: Optional[TaskCheckpoint] = None,
) -> RunResult:
    """Evaluate every detector on one recorded run's packed trace.

    Analysis runs behind the degradation ladder
    (:mod:`repro.resilience.guard`): CORD detectors differing only in D
    share one interval-fused pass when possible (see
    :mod:`repro.cord.fused`), every other configuration takes its packed
    kernel/columnar pass, and any exception in an accelerated path
    re-runs the affected configuration on the next-slower tier -- down
    to the pure-python scalar reference -- instead of failing the run.
    With ``REPRO_CROSS_CHECK=1`` the lower tiers are also run eagerly
    and asserted byte-identical.

    With a ``store`` *and* a journal ``task`` (the checkpointed path),
    every detector's outcome is additionally persisted as a durable
    per-config *slice* -- written after the soundness check, journaled
    as an ``analyzed`` transition -- and any slice already on disk is
    reused instead of recomputed.  A resumed run therefore re-analyzes
    only the configurations the interruption cut off, and assembles a
    bit-identical :class:`RunResult` either way (the ladder guarantees
    fused/kernel/scalar equivalence, and result dicts are filled in
    canonical detector order on both paths).

    The slices of one run live together in a single *outcome bundle*
    entry (one atomic write per run, not one per config): the analysis
    pass computes every missing configuration in one
    :func:`guarded_outcomes` call anyway, so bundling loses no real
    granularity while keeping the journaling overhead within its <= 2%
    budget (see ``benchmarks/bench_sensitivity.py``).
    """
    result = _fresh_run_result(recorded)
    checkpointed = (
        store is not None
        and task is not None
        and switch_probability is not None
    )
    if not checkpointed:
        outcomes: Dict[str, DetectionOutcome] = guarded_outcomes(
            detectors, recorded.n_threads, recorded.packed
        )
        for spec in detectors:
            outcome = outcomes[spec.name]
            result.flagged[spec.name] = outcome.raw_count
            result.problem[spec.name] = outcome.problem_detected
            result.counters[spec.name] = dict(outcome.counters)
        if check_soundness and "Ideal" in outcomes:
            _check_soundness(outcomes, result)
        return result

    digest = detectors_digest(detectors, check_soundness)
    bundle_key = _bundle_key(recorded, switch_probability, digest)
    slices = _load_bundle_slices(store, namespace, bundle_key, detectors)
    missing = [spec for spec in detectors if spec.name not in slices]
    fresh: Dict[str, DetectionOutcome] = (
        guarded_outcomes(missing, recorded.n_threads, recorded.packed)
        if missing else {}
    )
    _assemble_run(result, detectors, check_soundness, slices, fresh)

    # Persist the merged bundle (post-soundness, rebuilt in canonical
    # detector order so a resume-written bundle is byte-identical to an
    # uninterrupted run's), then journal each fresh configuration as an
    # ``analyzed`` transition -- the per-config kill points the chaos
    # matrix exercises.  A run with nothing fresh rewrites nothing.
    if fresh:
        store.store_value(
            namespace, bundle_key,
            _merged_bundle(detectors, slices, fresh, result),
        )
        for spec in detectors:
            if spec.name in fresh:
                task.analyzed(spec.name)
    return result


def _bundle_key(
    recorded: RecordedRun, switch_probability: float, digest: str
) -> Tuple:
    return (
        "outcomes", recorded.seed, recorded.target_index,
        switch_probability, digest,
    )


def _load_bundle_slices(
    store: PackedTraceStore,
    namespace: str,
    bundle_key: Tuple,
    detectors: Sequence[DetectorSpec],
) -> Dict[str, Dict]:
    """The run's durable per-config slices already on disk.

    The journal's ``analyzed`` markers are only observational: a slice
    hits even when the journal record was lost to a torn tail, because
    the bundle write happens-before the journal appends.
    """
    slices: Dict[str, Dict] = {}
    bundle = store.load_value(namespace, bundle_key)
    if isinstance(bundle, dict):
        for spec in detectors:
            value = bundle.get(spec.name)
            if isinstance(value, dict) and {"raw", "problem", "counters",
                                            "flagged"} <= set(value):
                slices[spec.name] = value
    return slices


def _assemble_run(
    result: RunResult,
    detectors: Sequence[DetectorSpec],
    check_soundness: bool,
    slices: Dict[str, Dict],
    fresh: Dict[str, DetectionOutcome],
) -> None:
    """Fill ``result`` from durable slices plus fresh outcomes.

    Canonical-order assembly: durable counters already carry their
    post-soundness ``false_positive_accesses`` entry; fresh ones gain
    it below, appended last exactly as the plain path does.
    """
    for spec in detectors:
        name = spec.name
        if name in slices:
            result.flagged[name] = slices[name]["raw"]
            result.problem[name] = slices[name]["problem"]
            result.counters[name] = dict(slices[name]["counters"])
        else:
            outcome = fresh[name]
            result.flagged[name] = outcome.raw_count
            result.problem[name] = outcome.problem_detected
            result.counters[name] = dict(outcome.counters)

    has_ideal = any(spec.name == "Ideal" for spec in detectors)
    if check_soundness and has_ideal:
        if "Ideal" in fresh:
            oracle_flagged: Set[AccessId] = fresh["Ideal"].flagged
            oracle_problem = fresh["Ideal"].problem_detected
        else:
            oracle_flagged = set(slices["Ideal"]["flagged"])
            oracle_problem = slices["Ideal"]["problem"]
        for spec in detectors:
            name = spec.name
            if name == "Ideal" or name not in fresh:
                continue  # durable slices passed soundness when minted
            _soundness_one(
                name,
                fresh[name].flagged,
                fresh[name].problem_detected,
                fresh[name].raw_count,
                oracle_flagged,
                oracle_problem,
                result,
            )


def _merged_bundle(
    detectors: Sequence[DetectorSpec],
    slices: Dict[str, Dict],
    fresh: Dict[str, DetectionOutcome],
    result: RunResult,
) -> Dict[str, Dict]:
    return {
        spec.name: (
            slices[spec.name]
            if spec.name in slices
            else {
                "raw": result.flagged[spec.name],
                "problem": result.problem[spec.name],
                "counters": result.counters[spec.name],
                "flagged": tuple(sorted(fresh[spec.name].flagged)),
            }
        )
        for spec in detectors
    }


def analyze_recorded_batch(
    recorded_runs: Sequence[RecordedRun],
    detectors: Sequence[DetectorSpec],
    check_soundness: bool = True,
    store: Optional[PackedTraceStore] = None,
    namespace: Optional[str] = None,
    switch_probability: Optional[float] = None,
) -> List[RunResult]:
    """:func:`analyze_recorded` over a batch of same-workload runs.

    The batch enters the ladder's multi-run tier
    (:func:`repro.resilience.guard.guarded_outcomes_batch`): one arena
    pass seeds every run's analysis plans, then each run flows through
    the ordinary per-run tiers, so the per-run reports -- and, with a
    ``store`` and ``switch_probability``, the persisted outcome
    bundles -- are byte-identical to :func:`analyze_recorded`'s (pinned
    by the batch property suite).  Runs whose bundles are already
    complete on disk are assembled without re-analysis and rewrite
    nothing, exactly like the per-run path.

    No journal ``task`` rides along: the run-level scheduler journals
    recording and commits, and bundle writes are atomic and keyed, so
    the ``analyzed`` markers' observational granularity is not needed
    here.
    """
    persist = store is not None and switch_probability is not None
    digest = detectors_digest(detectors, check_soundness)
    keys: List[Optional[Tuple]] = []
    slices_per: List[Dict[str, Dict]] = []
    missing_per: List[List[DetectorSpec]] = []
    for recorded in recorded_runs:
        if persist:
            bundle_key = _bundle_key(recorded, switch_probability, digest)
            slices = _load_bundle_slices(
                store, namespace, bundle_key, detectors
            )
        else:
            bundle_key, slices = None, {}
        keys.append(bundle_key)
        slices_per.append(slices)
        missing_per.append(
            [spec for spec in detectors if spec.name not in slices]
        )

    items = [
        (missing, recorded.n_threads, recorded.packed)
        for recorded, missing in zip(recorded_runs, missing_per)
        if missing
    ]
    fresh_iter = iter(
        guarded_outcomes_batch(items) if items else []
    )

    results: List[RunResult] = []
    for recorded, slices, missing, bundle_key in zip(
        recorded_runs, slices_per, missing_per, keys
    ):
        fresh = next(fresh_iter) if missing else {}
        result = _fresh_run_result(recorded)
        _assemble_run(result, detectors, check_soundness, slices, fresh)
        if persist and fresh:
            store.store_value(
                namespace, bundle_key,
                _merged_bundle(detectors, slices, fresh, result),
            )
        results.append(result)
    return results


def format_campaign_report(campaign: CampaignResult) -> str:
    """Render a campaign's summary report (ends with a newline).

    This is the *canonical* textual form of a campaign: the CLI
    ``inject`` command prints it and the campaign service stores and
    streams it, so "byte-identical reports across execution paths" is a
    claim about one shared renderer, not two formatting functions kept
    in sync by hand.
    """
    lines = [
        "workload      : %s" % campaign.workload,
        "sync instances: %d" % campaign.sync_instances,
        "manifested    : %d / %d runs" % (
            campaign.n_manifested, len(campaign.runs)),
    ]
    for name in campaign.detector_names:
        lines.append("  %-10s problems=%-3d races=%-4d" % (
            name,
            campaign.problems_detected(name),
            campaign.races_detected(name),
        ))
    return "\n".join(lines) + "\n"


def run_injected_once(
    factory: ProgramFactory,
    seed: int,
    target_index: int,
    detectors: Sequence[DetectorSpec],
    run_index: int = 0,
    check_soundness: bool = True,
    switch_probability: float = 0.1,
) -> RunResult:
    """Execute one injected run and evaluate every detector on its trace."""
    program = factory(seed)
    interceptor = InjectionInterceptor(target_index)
    trace = run_program(
        program,
        seed=seed,
        interceptor=interceptor,
        switch_probability=switch_probability,
    )
    result = RunResult(
        run_index=run_index,
        seed=seed,
        target_index=target_index,
        injected=interceptor.removed is not None,
        removed=interceptor.removed,
        hung=trace.hung,
        n_events=len(trace.events),
    )
    outcomes: Dict[str, DetectionOutcome] = {}
    for spec in detectors:
        outcome = spec.build(program.n_threads).run(trace)
        outcomes[spec.name] = outcome
        result.flagged[spec.name] = outcome.raw_count
        result.problem[spec.name] = outcome.problem_detected
        result.counters[spec.name] = dict(outcome.counters)
    if check_soundness and "Ideal" in outcomes:
        _check_soundness(outcomes, result)
    return result


def _check_soundness(
    outcomes: Dict[str, DetectionOutcome], result: RunResult
) -> None:
    """Enforce the paper's no-false-alarm guarantee.

    Two levels, both asserted:

    * **Race-free executions are silent**: if the Ideal happens-before
      oracle found nothing, no detector may report anything.  This is the
      production-run guarantee (properly labeled programs never alarm).
    * **No false problem reports**: a detector reporting races in a run
      implies the run really contains races.  (Trivial given the first
      rule, but stated for clarity.)

    Access-level exactness is deliberately *not* required on racy runs:
    the paper's clock updates on data races (its Figure 3 choice) let a
    real race inflate a thread's clock, after which a genuinely ordered
    pair can look reversed to a scalar clock.  Such extra reports only
    ever occur in runs that already contain real races -- "when in doubt,
    any pair of accesses can be treated as a race" -- and the per-run
    ``false_positive_accesses`` counter tracks how often it happens.
    """
    oracle = outcomes["Ideal"]
    for name, outcome in outcomes.items():
        if name == "Ideal":
            continue
        _soundness_one(
            name,
            outcome.flagged,
            outcome.problem_detected,
            outcome.raw_count,
            oracle.flagged,
            oracle.problem_detected,
            result,
        )


def _soundness_one(
    name: str,
    flagged: Set[AccessId],
    problem_detected: bool,
    raw_count: int,
    oracle_flagged: Set[AccessId],
    oracle_problem: bool,
    result: RunResult,
) -> None:
    """Soundness check for one detector outcome against the oracle.

    Factored out of :func:`_check_soundness` so the checkpointed path
    can check only the freshly computed outcomes while mixing in durable
    slices (which passed this check when they were minted).
    """
    extra = flagged - oracle_flagged
    result.counters.setdefault(name, {})[
        "false_positive_accesses"
    ] = len(extra)
    if problem_detected and not oracle_problem:
        raise SimulationError(
            "detector %s reported %d race(s) in run %d, but the "
            "execution is data-race-free (first: %s)"
            % (name, raw_count, result.run_index, sorted(flagged)[:3])
        )


def run_campaign(
    factory: ProgramFactory,
    workload_name: str,
    config: Optional[CampaignConfig] = None,
    trace_store: Optional[PackedTraceStore] = None,
    trace_namespace: Optional[str] = None,
    checkpoint=None,
    shared_traces=None,
) -> CampaignResult:
    """Run a full injection campaign for one workload.

    Record-once / analyze-many: each run is simulated exactly once (or
    loaded from ``trace_store``) and its packed trace is shared by every
    detector.  Because seeds and targets derive only from
    ``(base_seed, workload, run_index)``, results are bit-identical to
    per-config simulation (asserted by the record-once test suite).

    Args:
        trace_store: optional on-disk store of recorded runs; campaigns
            over the same workload/seed reuse each other's simulations.
        trace_namespace: store key prefix identifying the program being
            built (workload name plus parameters); defaults to
            ``workload_name``.  Callers whose factories take extra
            parameters MUST fold those into the namespace.
        checkpoint: optional
            :class:`~repro.resilience.journal.RunCheckpoint`.  With one
            (and a ``trace_store``), every run's lifecycle is journaled
            (``scheduled -> recorded -> analyzed[config] -> committed``)
            and its outcome persisted, so an interrupted campaign
            resumes to bit-identical results, skipping completed
            configurations.  Requires ``trace_store``.
        shared_traces: optional
            :class:`~repro.trace.sharedmem.SharedTraceMap` of recordings
            the parent process published; served zero-copy before the
            store is consulted.  Purely an acceleration layer -- results
            are bit-identical with or without it.
    """
    return _run_campaign(
        factory,
        workload_name,
        config,
        trace_store,
        trace_namespace,
        use_recorded=True,
        checkpoint=checkpoint,
        shared_traces=shared_traces,
    )


def run_campaign_per_config(
    factory: ProgramFactory,
    workload_name: str,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """The legacy per-configuration protocol: simulate inside each run.

    Every run re-executes the program and feeds each detector the
    materialized event objects (:func:`run_injected_once`) -- the cost
    model of giving each configuration its own campaign.  Results are
    bit-identical to :func:`run_campaign` with the same arguments (the
    record-once suite asserts it); this path exists as the baseline the
    record-once speedup is measured against.
    """
    return _run_campaign(
        factory, workload_name, config, None, None, use_recorded=False
    )


def _run_campaign(
    factory: ProgramFactory,
    workload_name: str,
    config: Optional[CampaignConfig],
    trace_store: Optional[PackedTraceStore],
    trace_namespace: Optional[str],
    use_recorded: bool,
    checkpoint=None,
    shared_traces=None,
) -> CampaignResult:
    config = config or CampaignConfig()
    detectors = config.detector_suite()
    namespace = trace_namespace or workload_name
    journaled = (
        checkpoint is not None and use_recorded and trace_store is not None
    )
    sizing_seed = campaign_sizing_seed(workload_name, config.base_seed)
    instance_count = None
    sizing_key = ("sync_instances", sizing_seed)
    if trace_store is not None:
        instance_count = trace_store.load_value(namespace, sizing_key)
    if instance_count is None:
        instance_count = count_sync_instances(
            factory(sizing_seed), sizing_seed
        )
        if trace_store is not None:
            trace_store.store_value(namespace, sizing_key, instance_count)
    if instance_count == 0:
        raise SimulationError(
            "workload %r has no injectable sync instances" % workload_name
        )
    result = CampaignResult(
        workload=workload_name,
        detector_names=[spec.name for spec in detectors],
        sync_instances=instance_count,
    )
    for run_index, seed, target in campaign_run_keys(
        workload_name, config, instance_count
    ):
        task = None
        if journaled:
            task = checkpoint.task(
                "%s/run%d" % (workload_name, run_index)
            )
            task.scheduled()
            # No committed fast path is needed here: the trace store
            # holds the packed recording (the "never re-record"
            # guarantee) and the outcome bundle holds every config's
            # slice, so replaying a committed run below is pure
            # store-hit assembly -- no simulation, no analysis, and no
            # redundant durable artifact to keep in sync.
        if use_recorded:
            recorded = record_injected_once(
                factory,
                seed,
                target,
                run_index=run_index,
                switch_probability=config.switch_probability,
                store=trace_store,
                namespace=namespace,
                shared=shared_traces,
            )
            if task is not None:
                task.recorded()
            run = analyze_recorded(
                recorded,
                detectors,
                config.check_soundness,
                store=trace_store if task is not None else None,
                namespace=namespace,
                switch_probability=(
                    config.switch_probability if task is not None else None
                ),
                task=task,
            )
        else:
            run = run_injected_once(
                factory,
                seed,
                target,
                detectors,
                run_index=run_index,
                check_soundness=config.check_soundness,
                switch_probability=config.switch_probability,
            )
        if task is not None:
            task.committed()
        result.runs.append(run)
    return result
