"""Supervised process fan-out for campaign tasks.

``multiprocessing.Pool`` is the wrong tool for long campaign sweeps: a
worker that dies mid-task hangs or poisons ``pool.map``, a hung worker
stalls the whole sweep forever, and either way hours of finished work
go down with it.  This supervisor replaces the pool with per-task child
processes it actually *watches*:

* every attempt gets a **deadline** (``REPRO_TASK_TIMEOUT`` seconds);
  a child that misses it is killed and the task retried;
* a child that **dies** without reporting (crash, OOM-kill, chaos
  ``worker_kill``) is detected and the task retried;
* retries use **exponential backoff with deterministic jitter** (seeded
  through :mod:`repro.common.rng`, so two identical runs back off
  identically) up to ``REPRO_MAX_RETRIES`` extra attempts;
* a task that exhausts its pool attempts -- or a **poisoned pool**
  (process spawn failing, or workers dying over and over) -- falls back
  to plain **in-process serial execution**, the degraded-but-correct
  bottom rung;
* the whole run is summarized in a structured :class:`RunReport` of
  per-task :class:`TaskOutcome` rows.

Exceptions *raised by the task body* are deliberately not retried: the
tasks here are deterministic computations, so a raising task would raise
again on every attempt.  Such failures are recorded and re-raised as
:class:`~repro.common.errors.PipelineError` after the surviving tasks
finish.  Results are returned keyed by task name; callers that need
deterministic ordering iterate their own task list, never completion
order.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import PipelineError, WorkerTimeoutError
from repro.common.rng import DeterministicRng
from repro.resilience import faults

logger = logging.getLogger("repro.resilience.supervisor")

#: Backoff shape: ``base * 2**attempt`` seconds, capped, plus up to 50%
#: deterministic jitter.  Small on purpose -- campaign tasks are seconds
#: to minutes long, so the backoff only needs to decorrelate respawns.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


def default_task_timeout() -> float:
    """Per-attempt deadline in seconds (``REPRO_TASK_TIMEOUT``, default 600)."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
    if raw:
        try:
            return max(0.1, float(raw))
        except ValueError:
            pass
    return 600.0


def default_max_retries() -> int:
    """Extra pool attempts per task (``REPRO_MAX_RETRIES``, default 2)."""
    raw = os.environ.get("REPRO_MAX_RETRIES", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return 2


@dataclass
class TaskOutcome:
    """What happened to one supervised task, attempt by attempt.

    Attributes:
        name: the task's key (campaign workload name).
        status: ``"ok"``, ``"failed"``, or ``"interrupted"`` (a graceful
            drain stopped the run before this task could finish; it is
            not a failure -- a resumed run picks it up).
        attempts: total attempts, pool and serial together.
        path: where the winning attempt ran -- ``"pool"`` (first try),
            ``"pool-retry"``, ``"serial"`` (the fallback rung), or
            ``"cache"`` (served durably, no worker occupied).
        errors: one human-readable line per failed attempt.
        timings: per-stage wall times in seconds.  The supervisor stamps
            ``task_s`` (winning attempt's spawn-to-result wall); the
            task layer merges in its own stage breakdown (the run-level
            scheduler adds ``record_s`` / ``analyze_s`` /
            ``store_io_s``).  See :meth:`RunReport.profile`.
    """

    name: str
    status: str = "pending"
    attempts: int = 0
    path: str = "pool"
    errors: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def clean(self) -> bool:
        """Did the task succeed first try, on the pool, with no drama?"""
        return self.ok and self.attempts == 1 and self.path == "pool"


@dataclass
class RunReport:
    """Structured record of one supervised fan-out.

    ``outcomes`` preserves task submission order regardless of which
    attempts retried or fell back, so two identical runs produce
    identical reports.
    """

    outcomes: List[TaskOutcome] = field(default_factory=list)
    pool_poisoned: bool = False
    #: True when a graceful drain (``should_stop``) ended the run early;
    #: unfinished tasks carry status ``"interrupted"``, not ``"failed"``.
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return all(out.ok for out in self.outcomes)

    @property
    def degraded(self) -> bool:
        """Did anything stray from the happy path (retry/serial/poison)?"""
        return self.pool_poisoned or any(
            not out.clean and out.path != "cache" for out in self.outcomes
        )

    def failed(self) -> List[TaskOutcome]:
        """Tasks that genuinely failed -- interrupted ones are resumable."""
        return [out for out in self.outcomes if out.status == "failed"]

    def summary(self) -> str:
        ok = sum(1 for out in self.outcomes if out.ok)
        retried = sum(
            1 for out in self.outcomes
            if out.ok and not out.clean and out.path != "cache"
        )
        line = "%d/%d task(s) ok (%d via retry/serial)" % (
            ok, len(self.outcomes), retried,
        )
        if self.pool_poisoned:
            line += "; pool poisoned, remainder ran serial"
        if self.interrupted:
            cut = sum(
                1 for out in self.outcomes if out.status == "interrupted"
            )
            line += "; drained early, %d task(s) interrupted" % cut
        return line

    def profile(self) -> Dict[str, float]:
        """Aggregate per-stage wall time over every task's ``timings``.

        Sums each stage key across the outcomes (``record_s``,
        ``analyze_s``, ``store_io_s``, ``task_s``, ...).  With a
        pipelined fan-out, ``task_s`` summed over tasks exceeding the
        run's wall clock is the direct evidence that recording and
        analysis actually overlapped.
        """
        totals: Dict[str, float] = {}
        for out in self.outcomes:
            for stage, seconds in out.timings.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def raise_if_failed(self) -> None:
        bad = self.failed()
        if not bad:
            return
        detail = "; ".join(
            "%s: %s" % (out.name, out.errors[-1] if out.errors else "?")
            for out in bad
        )
        exc = PipelineError(
            "%d supervised task(s) failed after all fallbacks: %s"
            % (len(bad), detail)
        )
        exc.report = self
        raise exc


def _child_main(fn, payload, attempt, conn) -> None:
    """Child-process entry: run the task body, ship the result back.

    Must stay module-level (picklable for spawn-based contexts).  The
    fault hook runs *before* the body so an injected kill/stall models a
    worker lost mid-task, not a broken computation.
    """
    try:
        faults.worker_entry(attempt)
        result = fn(payload)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - full report, then die
        try:
            conn.send((
                "error",
                "%s: %s" % (type(exc).__name__, exc),
                traceback.format_exc(),
            ))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Attempt:
    """One in-flight child process."""

    name: str
    payload: Any
    attempt: int
    proc: multiprocessing.process.BaseProcess
    conn: Any
    deadline: float
    started: float = 0.0


class Supervisor:
    """Runs named tasks on watched child processes; see the module doc.

    Args:
        jobs: maximum concurrent worker processes.
        timeout: per-attempt deadline in seconds (``None`` reads
            ``REPRO_TASK_TIMEOUT``).
        max_retries: extra pool attempts per task before the serial
            fallback (``None`` reads ``REPRO_MAX_RETRIES``).
        seed: seed for the deterministic backoff jitter.
        context: a :mod:`multiprocessing` context (``None``: fork where
            available, else the platform default).
    """

    def __init__(
        self,
        jobs: int,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        seed: int = 0,
        context=None,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = default_task_timeout() if timeout is None else timeout
        self.max_retries = (
            default_max_retries() if max_retries is None else max_retries
        )
        if context is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platforms without fork
                context = multiprocessing.get_context()
        self._context = context
        self._rng = DeterministicRng(seed, "supervisor")
        #: Worker deaths/timeouts before the pool is declared poisoned.
        self.poison_limit = max(4, 2 * self.jobs * (self.max_retries + 1))

    # -- internals -----------------------------------------------------------

    def _backoff(self, name: str, attempt: int) -> float:
        base = min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** attempt))
        jitter = self._rng.fork("%s/%d" % (name, attempt)).random()
        return base * (1.0 + 0.5 * jitter)

    def _spawn(self, name, payload, attempt) -> Optional[_Attempt]:
        recv_end, send_end = self._context.Pipe(duplex=False)
        proc = self._context.Process(
            target=_child_main,
            args=(self._fn, payload, attempt, send_end),
            name="repro-task-%s-%d" % (name, attempt),
        )
        proc.daemon = True
        proc.start()
        send_end.close()
        started = time.monotonic()
        return _Attempt(
            name=name,
            payload=payload,
            attempt=attempt,
            proc=proc,
            conn=recv_end,
            deadline=started + self.timeout,
            started=started,
        )

    @staticmethod
    def _reap(att: _Attempt) -> None:
        try:
            att.conn.close()
        except Exception:
            pass
        if att.proc.is_alive():
            att.proc.terminate()
            att.proc.join(1.0)
            if att.proc.is_alive():
                att.proc.kill()
                att.proc.join(1.0)
        else:
            att.proc.join()

    # -- the run loop --------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Tuple[str, Any]],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[Dict[str, Any], RunReport]:
        """Run every task; returns ``(results_by_name, report)``.

        Raises :class:`PipelineError` (carrying the report as
        ``exc.report``) only when a task failed on the pool *and* in
        the in-process serial fallback.

        ``should_stop`` is polled every loop iteration (the graceful
        shutdown hook): when it turns true the run *drains* -- no new
        attempts spawn, every in-flight worker is reaped immediately,
        unfinished tasks are marked ``"interrupted"`` (not failed, and
        they skip the serial rung), ``report.interrupted`` is set, and
        the finished results are returned so the caller can commit them
        before exiting resumably.
        """
        self._fn = fn
        order = [name for name, _ in tasks]
        outcomes = {name: TaskOutcome(name) for name, _ in tasks}
        report = RunReport(outcomes=[outcomes[name] for name in order])
        results: Dict[str, Any] = {}
        #: (name, payload, attempt, not_before_monotonic)
        queue: List[Tuple[str, Any, int, float]] = [
            (name, payload, 0, 0.0) for name, payload in tasks
        ]
        serial: List[Tuple[str, Any]] = []
        running: List[_Attempt] = []
        pool_ok = True
        deaths = 0

        def fail_attempt(att: _Attempt, detail: str, infra: bool) -> None:
            nonlocal pool_ok, deaths
            out = outcomes[att.name]
            out.errors.append(detail)
            logger.warning(
                "task %s attempt %d failed: %s",
                att.name, att.attempt + 1, detail,
            )
            if not infra:
                # A raising task body is deterministic: don't retry,
                # don't bother the serial rung -- record the failure.
                out.status = "failed"
                return
            deaths += 1
            if deaths >= self.poison_limit:
                pool_ok = False
                report.pool_poisoned = True
                logger.error(
                    "pool poisoned after %d worker failures; "
                    "remaining tasks run serially", deaths,
                )
            if pool_ok and att.attempt < self.max_retries:
                delay = self._backoff(att.name, att.attempt)
                queue.append((
                    att.name, att.payload, att.attempt + 1,
                    time.monotonic() + delay,
                ))
            else:
                serial.append((att.name, att.payload))

        try:
            while queue or running:
                if should_stop is not None and should_stop():
                    report.interrupted = True
                    break
                now = time.monotonic()
                # Spawn every ready task while worker slots are free.
                if pool_ok:
                    ready = [
                        entry for entry in queue if entry[3] <= now
                    ]
                    for entry in ready:
                        if len(running) >= self.jobs:
                            break
                        queue.remove(entry)
                        name, payload, attempt, _ = entry
                        outcomes[name].attempts += 1
                        try:
                            running.append(
                                self._spawn(name, payload, attempt)
                            )
                        except OSError as exc:
                            pool_ok = False
                            report.pool_poisoned = True
                            logger.error(
                                "worker spawn failed (%s); falling back "
                                "to serial execution", exc,
                            )
                            outcomes[name].attempts -= 1
                            serial.append((name, payload))
                            break
                else:
                    serial.extend(
                        (name, payload) for name, payload, _a, _t in queue
                    )
                    queue.clear()
                progressed = False
                for att in list(running):
                    msg = None
                    dead = False
                    if att.conn.poll():
                        try:
                            msg = att.conn.recv()
                        except (EOFError, OSError):
                            dead = True
                    elif not att.proc.is_alive():
                        # Drain the race where the child wrote and died
                        # between our poll and the liveness check.
                        att.proc.join()
                        if att.conn.poll():
                            try:
                                msg = att.conn.recv()
                            except (EOFError, OSError):
                                dead = True
                        else:
                            dead = True
                    elif now > att.deadline:
                        self._reap(att)
                        running.remove(att)
                        progressed = True
                        fail_attempt(
                            att,
                            repr(WorkerTimeoutError(
                                att.name, att.attempt + 1,
                                "deadline of %.1fs exceeded"
                                % self.timeout,
                            )),
                            infra=True,
                        )
                        continue
                    if msg is None and not dead:
                        continue
                    self._reap(att)
                    running.remove(att)
                    progressed = True
                    if msg is None:
                        code = att.proc.exitcode
                        fail_attempt(
                            att,
                            "worker died without a result "
                            "(exit code %r)" % (code,),
                            infra=True,
                        )
                    elif msg[0] == "ok":
                        out = outcomes[att.name]
                        out.status = "ok"
                        out.path = (
                            "pool" if att.attempt == 0 else "pool-retry"
                        )
                        out.timings["task_s"] = now - att.started
                        results[att.name] = msg[1]
                    else:
                        fail_attempt(
                            att,
                            "%s\n%s" % (msg[1], msg[2]),
                            infra=False,
                        )
                if not progressed and (running or queue):
                    time.sleep(0.02)
        finally:
            for att in running:
                self._reap(att)

        if report.interrupted:
            # Drained: whatever did not finish is interrupted, not
            # failed -- the journal/cache layer above resumes it.  The
            # serial rung is skipped on purpose (a drain means "stop
            # doing work", not "finish it more slowly").
            for out in outcomes.values():
                if out.status not in ("ok", "failed"):
                    out.status = "interrupted"
            logger.warning("supervised run drained: %s", report.summary())
            report.raise_if_failed()
            return results, report

        # The bottom rung: in-process serial execution, original task
        # order (not failure order) so reruns are deterministic.
        serial_order = [n for n in order if n in {s[0] for s in serial}]
        by_name = dict(serial)
        for name in serial_order:
            out = outcomes[name]
            out.attempts += 1
            out.path = "serial"
            logger.warning("task %s falling back to serial execution", name)
            try:
                results[name] = self._fn(by_name[name])
                out.status = "ok"
            except Exception as exc:  # noqa: BLE001
                out.status = "failed"
                out.errors.append(
                    "serial fallback raised %s: %s"
                    % (type(exc).__name__, exc)
                )
        report.raise_if_failed()
        return results, report

    def run_stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Tuple[str, Any]],
        on_result: Optional[Callable[..., None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[Dict[str, Any], RunReport]:
        """Like :meth:`run`, but the task graph may *grow* while it runs.

        ``on_result(outcome, value, submit)`` is called in the parent the
        moment a task succeeds (whatever path computed it);
        ``submit(name, payload)`` enqueues a follow-up task into the
        same work queue, so a pipeline -- record tasks fanning out into
        analyze tasks as recordings land -- flows through one pool with
        one load balancer.  The loop ends when the queue and the
        in-flight set are both empty, follow-ups included.

        Two deliberate differences from :meth:`run` (which is kept
        byte-for-byte stable for the per-campaign fan-out):

        * a task that exhausts its pool retries -- or hits a poisoned
          pool -- runs **inline immediately** instead of in an
          end-of-run serial rung, so its follow-ups still stream through
          the queue while other workers keep computing;
        * per-task wall time is stamped into
          :attr:`TaskOutcome.timings` on every path.

        Retry, poison, deadline, drain, and failure semantics are
        otherwise identical (keep the two loops in sync).  Exceptions
        raised by ``on_result`` itself propagate after the in-flight
        children are reaped -- a coordinator bug must surface, not hang
        the fan-out.
        """
        self._fn = fn
        outcomes: Dict[str, TaskOutcome] = {}
        order: List[str] = []
        report = RunReport()
        results: Dict[str, Any] = {}
        #: (name, payload, attempt, not_before_monotonic)
        queue: List[Tuple[str, Any, int, float]] = []
        running: List[_Attempt] = []
        pool_ok = True
        deaths = 0

        def submit(name: str, payload: Any) -> None:
            if name in outcomes:
                raise ValueError(
                    "duplicate streamed task name %r" % (name,)
                )
            outcomes[name] = TaskOutcome(name)
            order.append(name)
            report.outcomes.append(outcomes[name])
            queue.append((name, payload, 0, 0.0))

        for name, payload in tasks:
            submit(name, payload)

        def finish_ok(name: str, value: Any) -> None:
            results[name] = value
            if on_result is not None:
                on_result(outcomes[name], value, submit)

        def run_serial_now(name: str, payload: Any) -> None:
            out = outcomes[name]
            out.attempts += 1
            out.path = "serial"
            logger.warning(
                "task %s falling back to serial execution", name
            )
            started = time.monotonic()
            try:
                value = self._fn(payload)
            except Exception as exc:  # noqa: BLE001
                out.status = "failed"
                out.errors.append(
                    "serial fallback raised %s: %s"
                    % (type(exc).__name__, exc)
                )
                return
            out.status = "ok"
            out.timings["task_s"] = time.monotonic() - started
            finish_ok(name, value)

        def fail_attempt(att: _Attempt, detail: str, infra: bool) -> None:
            nonlocal pool_ok, deaths
            out = outcomes[att.name]
            out.errors.append(detail)
            logger.warning(
                "task %s attempt %d failed: %s",
                att.name, att.attempt + 1, detail,
            )
            if not infra:
                out.status = "failed"
                return
            deaths += 1
            if deaths >= self.poison_limit:
                pool_ok = False
                report.pool_poisoned = True
                logger.error(
                    "pool poisoned after %d worker failures; "
                    "remaining tasks run serially", deaths,
                )
            if pool_ok and att.attempt < self.max_retries:
                delay = self._backoff(att.name, att.attempt)
                queue.append((
                    att.name, att.payload, att.attempt + 1,
                    time.monotonic() + delay,
                ))
            else:
                run_serial_now(att.name, att.payload)

        try:
            while queue or running:
                if should_stop is not None and should_stop():
                    report.interrupted = True
                    break
                now = time.monotonic()
                if pool_ok:
                    ready = [
                        entry for entry in queue if entry[3] <= now
                    ]
                    for entry in ready:
                        if len(running) >= self.jobs:
                            break
                        queue.remove(entry)
                        name, payload, attempt, _ = entry
                        outcomes[name].attempts += 1
                        try:
                            running.append(
                                self._spawn(name, payload, attempt)
                            )
                        except OSError as exc:
                            pool_ok = False
                            report.pool_poisoned = True
                            logger.error(
                                "worker spawn failed (%s); falling back "
                                "to serial execution", exc,
                            )
                            outcomes[name].attempts -= 1
                            run_serial_now(name, payload)
                            break
                else:
                    drained = list(queue)
                    queue.clear()
                    for name, payload, _attempt, _t in drained:
                        run_serial_now(name, payload)
                progressed = False
                for att in list(running):
                    msg = None
                    dead = False
                    if att.conn.poll():
                        try:
                            msg = att.conn.recv()
                        except (EOFError, OSError):
                            dead = True
                    elif not att.proc.is_alive():
                        # Drain the race where the child wrote and died
                        # between our poll and the liveness check.
                        att.proc.join()
                        if att.conn.poll():
                            try:
                                msg = att.conn.recv()
                            except (EOFError, OSError):
                                dead = True
                        else:
                            dead = True
                    elif now > att.deadline:
                        self._reap(att)
                        running.remove(att)
                        progressed = True
                        fail_attempt(
                            att,
                            repr(WorkerTimeoutError(
                                att.name, att.attempt + 1,
                                "deadline of %.1fs exceeded"
                                % self.timeout,
                            )),
                            infra=True,
                        )
                        continue
                    if msg is None and not dead:
                        continue
                    self._reap(att)
                    running.remove(att)
                    progressed = True
                    if msg is None:
                        code = att.proc.exitcode
                        fail_attempt(
                            att,
                            "worker died without a result "
                            "(exit code %r)" % (code,),
                            infra=True,
                        )
                    elif msg[0] == "ok":
                        out = outcomes[att.name]
                        out.status = "ok"
                        out.path = (
                            "pool" if att.attempt == 0 else "pool-retry"
                        )
                        out.timings["task_s"] = now - att.started
                        finish_ok(att.name, msg[1])
                    else:
                        fail_attempt(
                            att,
                            "%s\n%s" % (msg[1], msg[2]),
                            infra=False,
                        )
                if not progressed and (running or queue):
                    time.sleep(0.02)
        finally:
            for att in running:
                self._reap(att)

        if report.interrupted:
            for out in outcomes.values():
                if out.status not in ("ok", "failed"):
                    out.status = "interrupted"
            logger.warning("supervised run drained: %s", report.summary())
        report.raise_if_failed()
        return results, report


def run_supervised(
    fn: Callable[[Any], Any],
    tasks: Sequence[Tuple[str, Any]],
    jobs: int,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    seed: int = 0,
) -> Tuple[Dict[str, Any], RunReport]:
    """One-call convenience wrapper around :class:`Supervisor`."""
    sup = Supervisor(
        jobs, timeout=timeout, max_retries=max_retries, seed=seed
    )
    return sup.run(fn, tasks)
