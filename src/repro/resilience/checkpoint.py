"""Crash-consistent durable writes, litter collection, graceful shutdown.

This module is the bottom layer of the checkpointing stack (see
``docs/resilience.md`` section 6): one atomic-write helper that every
durable artifact goes through, garbage collection for the litter a
killed process leaves behind, and the SIGTERM/SIGINT machinery that
turns an interruption into a *resumable* exit instead of lost work.
The write-ahead journal built on top of it lives in
:mod:`repro.resilience.journal`.

Guarantees, in order of strength:

* **Atomicity against process death** -- :func:`atomic_write_bytes`
  writes to a same-directory ``*.tmp.<pid>`` file and ``os.replace``\\ s
  it into place, so a reader (or a resumed run) only ever sees the old
  bytes, the new bytes, or a miss -- never a torn file.  A ``kill -9``
  at any instruction boundary leaves at worst an orphaned temp file,
  which :func:`collect_tmp_litter` removes on the next startup.
* **Durability against OS/power loss** -- the helper ``fsync``\\ s the
  temp file before the rename (disable with ``REPRO_FSYNC=0`` when
  benchmarking on throwaway data).  Even without it, every consumer of
  these files sits behind the ``CORDSTOR1`` checksummed frame, so a
  lost or torn write is detected and redone, never trusted.

This module must stay import-light (stdlib plus the error taxonomy):
the trace store and the journal both build on it.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import logging
import os
import re
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional

from repro.common.errors import InterruptedRunError

logger = logging.getLogger("repro.resilience.checkpoint")

#: Temp-file pattern the atomic writer produces and the collector hunts:
#: ``<final name>.tmp.<pid>``.
_TMP_RE = re.compile(r"\.tmp\.(\d+)$")

#: The CLI exit code for "interrupted, resumable" (see ``repro.cli``).
INTERRUPTED_EXIT_CODE = 71


def fsync_enabled() -> bool:
    """Should atomic writes fsync before renaming?  (``REPRO_FSYNC``, on.)"""
    return os.environ.get("REPRO_FSYNC", "1") != "0"


def atomic_write_bytes(
    path: os.PathLike, data: bytes, fsync: Optional[bool] = None
) -> Path:
    """Write ``data`` to ``path`` atomically: tmp -> fsync -> rename.

    The temp file lives in the target directory (same filesystem, so the
    rename is atomic) and carries the writer's pid, so concurrent
    writers never collide and the litter collector can tell a live
    writer's temp file from a dead one's.  Returns the final path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp.%d" % os.getpid())
    if fsync is None:
        fsync = fsync_enabled()
    with tmp.open("wb") as fh:
        fh.write(data)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def atomic_write_text(
    path: os.PathLike, text: str, fsync: Optional[bool] = None
) -> Path:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: os.PathLike, payload, fsync: Optional[bool] = None, **dumps_kwargs
) -> Path:
    """:func:`atomic_write_bytes` for a JSON document (trailing newline)."""
    return atomic_write_text(
        path, json.dumps(payload, **dumps_kwargs) + "\n", fsync=fsync
    )


def canonicalize(obj):
    """Rebuild ``obj`` so that pickling it is byte-deterministic.

    ``pickle`` memoizes by object *identity*: two semantically equal
    graphs serialize differently when one shares a string (or tuple)
    object where the other holds equal-but-distinct copies.  A resumed
    run assembles its results partly from freshly computed objects and
    partly from separately unpickled durable slices, so without
    normalization its cache bytes would differ from an uninterrupted
    run's even though every value is equal.  This helper recursively
    rebuilds containers and dataclasses and interns every string, which
    pins the identity structure to the value structure -- equal graphs
    then pickle to equal bytes.  Applied by the trace store's
    ``store_value`` and the campaign cache writer.
    """
    kind = type(obj)
    if kind is int or kind is float or kind is bool or obj is None:
        return obj  # scalar fast path: the bulk of any result graph
    if isinstance(obj, str):
        return sys.intern(obj)
    if isinstance(obj, dict):
        return type(obj)(
            (canonicalize(key), canonicalize(value))
            for key, value in obj.items()
        )
    if isinstance(obj, tuple):
        return tuple(canonicalize(item) for item in obj)
    if isinstance(obj, list):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return type(obj)(canonicalize(item) for item in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.replace(obj, **{
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        })
    return obj


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for the pid baked into a temp file."""
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError as exc:
        return exc.errno != errno.ESRCH
    return True


def collect_tmp_litter(root: os.PathLike, max_age_s: float = 3600.0) -> int:
    """Remove orphaned ``*.tmp.<pid>`` files under ``root``; count removed.

    A temp file is an orphan when its writer process is dead -- the
    rename that would have retired it can never happen.  Files whose
    writer is still alive are left alone unless older than
    ``max_age_s`` (a recycled pid should not pin litter forever).
    """
    root = Path(root)
    if not root.is_dir():
        return 0
    removed = 0
    now = time.time()
    for path in root.rglob("*.tmp.*"):
        match = _TMP_RE.search(path.name)
        if match is None or not path.is_file():
            continue
        pid = int(match.group(1))
        if pid != os.getpid() and _pid_alive(pid):
            try:
                fresh = (now - path.stat().st_mtime) < max_age_s
            except OSError:
                continue
            if fresh:
                continue
        try:
            path.unlink()
            removed += 1
        except OSError as exc:
            logger.warning("could not remove tmp litter %s: %s", path, exc)
    if removed:
        logger.info("removed %d orphaned tmp file(s) under %s",
                    removed, root)
    return removed


def default_quarantine_keep() -> int:
    """Quarantined entries kept per directory (``REPRO_QUARANTINE_KEEP``, 32)."""
    raw = os.environ.get("REPRO_QUARANTINE_KEEP", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return 32


def default_quarantine_max_age() -> float:
    """Max quarantine age in seconds (``REPRO_QUARANTINE_MAX_AGE_S``, 7 days)."""
    raw = os.environ.get("REPRO_QUARANTINE_MAX_AGE_S", "").strip()
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return 7 * 24 * 3600.0


def prune_quarantine(
    qdir: os.PathLike,
    keep: Optional[int] = None,
    max_age_s: Optional[float] = None,
) -> int:
    """Age- and count-cap a ``quarantine/`` directory; count entries pruned.

    Quarantined store entries exist for post-mortems, not forever: this
    removes entries older than ``max_age_s`` and, of the survivors, all
    but the ``keep`` newest.  An *entry* is the quarantined file plus
    its ``.reason.txt`` note; the pair is pruned together and counted
    once.  Returns the number of entries removed.
    """
    qdir = Path(qdir)
    if not qdir.is_dir():
        return 0
    if keep is None:
        keep = default_quarantine_keep()
    if max_age_s is None:
        max_age_s = default_quarantine_max_age()
    entries = []
    for path in qdir.iterdir():
        if not path.is_file() or path.name.endswith(".reason.txt"):
            continue
        try:
            mtime = path.stat().st_mtime
        except OSError:
            continue
        entries.append((mtime, path))
    entries.sort(reverse=True)  # newest first
    now = time.time()
    doomed = [
        path
        for index, (mtime, path) in enumerate(entries)
        if index >= keep or (now - mtime) > max_age_s
    ]
    pruned = 0
    for path in doomed:
        try:
            path.unlink()
            pruned += 1
        except OSError as exc:
            logger.warning("could not prune quarantined %s: %s", path, exc)
            continue
        reason = path.with_name(path.name + ".reason.txt")
        try:
            reason.unlink()
        except OSError:
            pass
    if pruned:
        logger.info("pruned %d quarantined entr(ies) under %s",
                    pruned, qdir)
    return pruned


# -- graceful shutdown ---------------------------------------------------------

#: Innermost-last stack of active shutdown contexts (main process only).
_ACTIVE: List["GracefulShutdown"] = []


class GracefulShutdown:
    """Turns SIGTERM/SIGINT into a drain request instead of sudden death.

    Used as a context manager around a long campaign or sweep: the first
    signal sets a flag that :meth:`check` (called at every journal
    transition and supervisor poll) converts into
    :class:`InterruptedRunError` at the next safe point -- workers are
    drained, the journal is flushed, the process exits resumable (71).
    A *second* signal restores the previous handler's behavior, so an
    operator can still insist.

    Handler installation is best-effort: off the main thread (or with
    ``install=False``) the object still works as a plain flag that
    :meth:`request` sets programmatically -- the supervisor drain tests
    and the chaos ``sigterm_drain`` fault use exactly that.
    """

    def __init__(self, install: bool = True):
        self._install = install
        self._requested = False
        self._signum: Optional[int] = None
        self._previous = {}

    @property
    def requested(self) -> bool:
        return self._requested

    def request(self, signum: Optional[int] = None) -> None:
        """Flag a shutdown (signal handler body; also callable directly)."""
        self._requested = True
        self._signum = signum

    def check(self, run_id: Optional[str] = None) -> None:
        """Raise :class:`InterruptedRunError` if a shutdown was requested."""
        if self._requested:
            raise InterruptedRunError(run_id)

    def _handle(self, signum, _frame) -> None:
        if self._requested:
            # Second signal: the operator means it.  Fall back to the
            # previous disposition immediately.
            self._restore()
            os.kill(os.getpid(), signum)
            return
        logger.warning(
            "received signal %d: draining to a resumable stop "
            "(signal again to force)", signum,
        )
        self.request(signum)

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()

    def __enter__(self) -> "GracefulShutdown":
        if self._install and threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._handle
                    )
                except (ValueError, OSError):
                    pass  # exotic platform or nested interpreter
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        if self in _ACTIVE:
            _ACTIVE.remove(self)
        self._restore()


def current_shutdown() -> Optional[GracefulShutdown]:
    """The innermost active shutdown context, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


def request_shutdown(run_id: Optional[str] = None) -> None:
    """Inject a shutdown request (the ``sigterm_drain`` fault's hook).

    With an active :class:`GracefulShutdown` the flag is set and the run
    drains at its next safe point, exactly as if SIGTERM had arrived.
    With none -- nothing is orchestrating a drain -- the interruption is
    raised on the spot.
    """
    active = current_shutdown()
    if active is not None:
        active.request()
    else:
        raise InterruptedRunError(run_id)


def check_shutdown(run_id: Optional[str] = None) -> None:
    """Raise :class:`InterruptedRunError` if any active context was flagged."""
    active = current_shutdown()
    if active is not None:
        active.check(run_id)


def run_interrupted() -> bool:
    """Has the active shutdown context (if any) been flagged?"""
    active = current_shutdown()
    return active is not None and active.requested


ShouldStop = Callable[[], bool]
