"""The automatic degradation ladder: batch -> fused -> kernel -> scalar.

The analysis stack has four tiers, fastest first:

1. **batch** -- one arena pass builds the analysis plans for *k*
   same-geometry recorded runs at once (the batched builders in
   :mod:`repro.trace.kernels`, seeded into each trace's plan cache) and
   carries fused-threshold hints across the batch; the only multi-run
   tier;
2. **fused** -- one interval-fused pass covers a whole D-sweep group
   (:func:`repro.cord.fused.fuse_cord_detectors`);
3. **kernel** -- the per-configuration packed pass
   (``Detector.run_packed``, which internally picks the plan-driven
   kernel or the scalar columnar loop);
4. **scalar** -- the pure-python per-event-object reference path
   (``Detector.run`` over materialized events), the code every
   accelerated tier is pinned byte-identical to.

The batch tier is pure *preparation*: it seeds per-trace caches with
values byte-identical to what the per-run builders would derive (pinned
by the batch property suite), so abandoning it mid-flight just means
some runs derive their own plans -- one poisoned run degrades alone
through the per-run tiers while the rest of the batch keeps its seeded
plans.

All three produce identical reports by construction (and by the
equivalence test suites), so an accelerated tier is always *safe to
abandon*: this module catches any exception an accelerated pass raises,
logs it once with full context, rebuilds the affected detectors fresh
(a half-finished pass may have torn their state), and re-runs the
affected configurations on the next-slower tier.  Only when the scalar
reference path itself fails does the failure escape, as
:class:`~repro.common.errors.DegradedPathError`.

Degradations are recorded in the process-global :data:`GUARD_LOG` (the
chaos suite asserts on it) and logged through :mod:`logging` under
``repro.resilience.guard``.

Paranoid mode: with ``REPRO_CROSS_CHECK=1`` every analyzed trace is
additionally re-analyzed on the lower ladder tiers and the reports are
asserted identical -- flagged accesses, race records, counters, and the
order log, byte for byte.  A mismatch raises
:class:`~repro.common.errors.PipelineError`; it means an accelerated
path is wrong, which the paper's soundness claim cannot tolerate.
"""

from __future__ import annotations

import logging
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import DegradedPathError, PipelineError
from repro.trace.stream import Trace

logger = logging.getLogger("repro.resilience.guard")

#: Ladder tiers, fastest first.  "batch" is the only multi-run tier;
#: the other three are per-configuration within one run.
LADDER = ("batch", "fused", "kernel", "scalar")


def cross_check_enabled() -> bool:
    """Is paranoid ladder cross-checking on (``REPRO_CROSS_CHECK=1``)?"""
    return os.environ.get("REPRO_CROSS_CHECK", "") == "1"


@dataclass
class DegradationEvent:
    """One recorded fall down the ladder."""

    tier: str        #: the tier that failed ("batch", "fused" or "kernel")
    detector: str    #: spec name, or "*" for a whole fused group / batch
    error: str       #: ``repr()`` of the exception

    def __str__(self):
        return "%s path failed for %s: %s" % (
            self.tier, self.detector, self.error,
        )


@dataclass
class GuardLog:
    """Accumulating record of ladder degradations (process-global)."""

    events: List[DegradationEvent] = field(default_factory=list)

    def record(self, tier: str, detector: str, exc: BaseException) -> None:
        event = DegradationEvent(tier, detector, repr(exc))
        self.events.append(event)
        logger.warning(
            "degrading to the next tier: %s", event, exc_info=exc
        )

    def count(self, tier: Optional[str] = None) -> int:
        if tier is None:
            return len(self.events)
        return sum(1 for event in self.events if event.tier == tier)

    def clear(self) -> None:
        del self.events[:]


#: Process-global degradation record; tests clear and inspect it.
GUARD_LOG = GuardLog()


def mark_plan_sharing(detectors) -> None:
    """Tell each CORD detector whether its coherence plan amortizes.

    The plan (:mod:`repro.cord.coherence`) is keyed by cache geometry
    and shared across a sweep's configurations; building one that no
    other configuration reuses costs about as much as the scalar pass it
    replaces (a cache-capacity sweep is all unique geometries).  The
    caller sees the whole detector list, so it can say which geometries
    appear at least twice; singletons keep the scalar loop.
    """
    from repro.cord.detector import CordDetector

    keys = {}
    for det in detectors:
        if type(det) is CordDetector and det._walkers is None:
            keys[id(det)] = det._coherence_key()
    counts = Counter(keys.values())
    for det in detectors:
        key = keys.get(id(det))
        if key is not None:
            det._plan_amortized = counts[key] >= 2


def compute_outcomes(
    specs: Sequence,
    n_threads: int,
    packed,
    allow_fused: bool = True,
    allow_packed: bool = True,
    guard_log: Optional[GuardLog] = None,
    fused_hints: Optional[dict] = None,
) -> Dict[str, "DetectionOutcome"]:  # noqa: F821 - doc reference
    """Analyze ``packed`` with every spec, degrading tiers on failure.

    The entry tier is selected by the flags (``allow_fused=False`` skips
    straight to the kernel tier; ``allow_packed=False`` to scalar) --
    the cross-check uses them to pin a tier; normal analysis leaves both
    True and only ever *descends*.  ``fused_hints`` is the batch tier's
    threshold memo, threaded through to
    :func:`repro.cord.fused.fuse_cord_detectors` (cost policy only).
    """
    log = GUARD_LOG if guard_log is None else guard_log
    if not allow_packed:
        trace = Trace.from_packed(packed)
        return {
            spec.name: spec.build(n_threads).run(trace) for spec in specs
        }

    built = [(spec, spec.build(n_threads)) for spec in specs]
    mark_plan_sharing([det for _spec, det in built])
    fused_ids: frozenset = frozenset()
    if allow_fused and len(built) > 1:
        from repro.cord.fused import fuse_cord_detectors

        try:
            fused_ids = fuse_cord_detectors(
                [det for _spec, det in built], packed,
                hints=fused_hints,
            )
        except Exception as exc:  # noqa: BLE001 - the ladder's contract
            log.record("fused", "*", exc)
            # An aborted group pass may have half-materialized any
            # detector in the group: rebuild them all, cold.
            built = [(spec, spec.build(n_threads)) for spec in specs]
            mark_plan_sharing([det for _spec, det in built])
            fused_ids = frozenset()

    outcomes: Dict[str, object] = {}
    scalar_trace: Optional[Trace] = None
    for spec, det in built:
        try:
            if id(det) in fused_ids:
                outcomes[spec.name] = det.finish(packed)
            else:
                outcomes[spec.name] = det.run_packed(packed)
        except Exception as exc:  # noqa: BLE001 - the ladder's contract
            log.record("kernel", spec.name, exc)
            if scalar_trace is None:
                scalar_trace = Trace.from_packed(packed)
            fresh = spec.build(n_threads)
            try:
                outcomes[spec.name] = fresh.run(scalar_trace)
            except Exception as scalar_exc:
                raise DegradedPathError(
                    "configuration %r failed on every ladder tier "
                    "(last: scalar reference path raised %r; "
                    "accelerated-tier failure was %r)"
                    % (spec.name, scalar_exc, exc)
                ) from scalar_exc
    return outcomes


def _fingerprint(outcome):
    """Everything a report contains, as a comparable value."""
    log = getattr(outcome, "log", None)
    log_key = None
    if log is not None:
        log_key = (
            log.size_bytes,
            tuple((e.clock, e.thread, e.count) for e in log),
        )
    return (
        outcome.detector_name,
        tuple(sorted(outcome.flagged)),
        tuple(outcome.races),
        tuple(sorted(outcome.counters.items())),
        log_key,
    )


def verify_ladder_equivalence(
    specs: Sequence,
    n_threads: int,
    packed,
    primary: Dict[str, object],
) -> None:
    """Re-run the lower tiers and assert byte-identical reports.

    ``primary`` is the report set the normal (fused-first) analysis
    produced; the kernel and scalar tiers must reproduce it exactly.
    """
    tiers = (
        ("kernel", dict(allow_fused=False)),
        ("scalar", dict(allow_fused=False, allow_packed=False)),
    )
    want = {name: _fingerprint(out) for name, out in primary.items()}
    for tier, kwargs in tiers:
        alt = compute_outcomes(specs, n_threads, packed, **kwargs)
        for name, outcome in alt.items():
            if _fingerprint(outcome) != want[name]:
                raise PipelineError(
                    "REPRO_CROSS_CHECK: %r differs between the primary "
                    "analysis and the %s tier -- an accelerated path "
                    "is producing wrong reports" % (name, tier)
                )


def guarded_outcomes(
    specs: Sequence,
    n_threads: int,
    packed,
    guard_log: Optional[GuardLog] = None,
) -> Dict[str, object]:
    """The guarded analysis entry point used by the campaign layer."""
    outcomes = compute_outcomes(
        specs, n_threads, packed, guard_log=guard_log
    )
    if cross_check_enabled():
        verify_ladder_equivalence(specs, n_threads, packed, outcomes)
    return outcomes


# -- the batch tier (multi-run arena) -----------------------------------------


def _needed_products(specs, n_threads):
    """What plan products do these specs consume on the kernel tier?

    Throwaway builds introspect each detector's geometry: CORD configs
    need a :class:`~repro.trace.kernels.SegmentPlan` per line mask, the
    infinite-capacity vector-clock detector a line residual, and the
    happens-before oracles the word residual.  Construction is a few
    dict inserts per detector -- noise next to one analysis pass.
    """
    from repro.cord.detector import CordDetector
    from repro.detectors.epoch import EpochDetector
    from repro.detectors.ideal import IdealDetector
    from repro.detectors.vector_cord import LimitedVectorDetector

    seg_masks, line_masks, want_word = set(), set(), False
    for spec in specs:
        det = spec.build(n_threads)
        if isinstance(det, CordDetector):
            seg_masks.add(det._line_mask)
        elif isinstance(det, LimitedVectorDetector):
            if det.geometry.is_infinite:
                line_masks.add(~(det.geometry.line_size - 1))
        elif isinstance(det, (IdealDetector, EpochDetector)):
            want_word = True
    return seg_masks, line_masks, want_word


def _prime_batch(items) -> None:
    """Seed every run's plan caches from one arena pass per product.

    ``items`` is the batch: ``(specs, n_threads, packed)`` triples.  The
    batched builders are byte-identical to their per-run counterparts
    and the seeders never clobber, so a partial prime (an exception
    after some products landed) leaves only correct values behind.
    """
    from repro.resilience import faults
    from repro.trace import kernels

    if not kernels.kernels_enabled():
        return
    if faults.active() and faults.fire("batch_raise"):
        # Chaos harness: an unexpected crash in the batch tier.  The
        # ladder must abandon the arena and let every run derive its
        # own plans through the per-run tiers.
        raise RuntimeError(
            "chaos: injected batch-tier fault (batch_raise)"
        )
    packeds = [packed for _specs, _n, packed in items]
    seg_masks, line_masks, want_word = set(), set(), False
    for specs, n_threads, _packed in items:
        segs, lines, word = _needed_products(specs, n_threads)
        seg_masks |= segs
        line_masks |= lines
        want_word = want_word or word
    for mask in sorted(seg_masks):
        plans = kernels.build_batched_segment_plans(packeds, mask)
        if plans is not None:
            for packed, plan in zip(packeds, plans):
                packed.seed_segment_plan(mask, plan)
    for mask in sorted(line_masks):
        views = kernels.build_batched_line_residuals(packeds, mask)
        if views is not None:
            for packed, view in zip(packeds, views):
                packed.seed_line_residual(mask, view)
    if want_word:
        views = kernels.build_batched_word_residuals(packeds)
        if views is not None:
            for packed, view in zip(packeds, views):
                packed.seed_word_residual(view)


def compute_outcomes_batch(
    items: Sequence,
    guard_log: Optional[GuardLog] = None,
) -> List[Dict[str, object]]:
    """Analyze a batch of recorded runs, one outcome dict per item.

    ``items`` holds ``(specs, n_threads, packed)`` triples of
    same-geometry runs.  The batch tier primes every run's plan caches
    in one arena pass and threads a fused-threshold memo across the
    batch; each run then flows through the ordinary per-run ladder, so
    a failing batch pass -- or one poisoned run -- degrades exactly
    like today: the run falls to the next tier alone, its batchmates
    keep their seeded plans.
    """
    log = GUARD_LOG if guard_log is None else guard_log
    if len(items) > 1:
        try:
            _prime_batch(items)
        except Exception as exc:  # noqa: BLE001 - the ladder's contract
            log.record("batch", "*", exc)
    hints: dict = {}
    return [
        compute_outcomes(
            specs, n_threads, packed,
            guard_log=log, fused_hints=hints,
        )
        for specs, n_threads, packed in items
    ]


def guarded_outcomes_batch(
    items: Sequence,
    guard_log: Optional[GuardLog] = None,
) -> List[Dict[str, object]]:
    """Batch counterpart of :func:`guarded_outcomes`.

    The cross-check runs per item against the *un*-batched lower tiers,
    so a wrong seeded plan or a wrong hint cannot hide behind itself.
    """
    results = compute_outcomes_batch(items, guard_log=guard_log)
    if cross_check_enabled():
        for (specs, n_threads, packed), outcomes in zip(items, results):
            verify_ladder_equivalence(specs, n_threads, packed, outcomes)
    return results
