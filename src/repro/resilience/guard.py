"""The automatic degradation ladder: fused -> kernel -> pure-python scalar.

The analysis stack has three tiers per configuration, fastest first:

1. **fused** -- one interval-fused pass covers a whole D-sweep group
   (:func:`repro.cord.fused.fuse_cord_detectors`);
2. **kernel** -- the per-configuration packed pass
   (``Detector.run_packed``, which internally picks the plan-driven
   kernel or the scalar columnar loop);
3. **scalar** -- the pure-python per-event-object reference path
   (``Detector.run`` over materialized events), the code every
   accelerated tier is pinned byte-identical to.

All three produce identical reports by construction (and by the
equivalence test suites), so an accelerated tier is always *safe to
abandon*: this module catches any exception an accelerated pass raises,
logs it once with full context, rebuilds the affected detectors fresh
(a half-finished pass may have torn their state), and re-runs the
affected configurations on the next-slower tier.  Only when the scalar
reference path itself fails does the failure escape, as
:class:`~repro.common.errors.DegradedPathError`.

Degradations are recorded in the process-global :data:`GUARD_LOG` (the
chaos suite asserts on it) and logged through :mod:`logging` under
``repro.resilience.guard``.

Paranoid mode: with ``REPRO_CROSS_CHECK=1`` every analyzed trace is
additionally re-analyzed on the lower ladder tiers and the reports are
asserted identical -- flagged accesses, race records, counters, and the
order log, byte for byte.  A mismatch raises
:class:`~repro.common.errors.PipelineError`; it means an accelerated
path is wrong, which the paper's soundness claim cannot tolerate.
"""

from __future__ import annotations

import logging
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import DegradedPathError, PipelineError
from repro.trace.stream import Trace

logger = logging.getLogger("repro.resilience.guard")

#: Ladder tiers, fastest first.
LADDER = ("fused", "kernel", "scalar")


def cross_check_enabled() -> bool:
    """Is paranoid ladder cross-checking on (``REPRO_CROSS_CHECK=1``)?"""
    return os.environ.get("REPRO_CROSS_CHECK", "") == "1"


@dataclass
class DegradationEvent:
    """One recorded fall down the ladder."""

    tier: str        #: the tier that failed ("fused" or "kernel")
    detector: str    #: spec name, or "*" for a whole fused group
    error: str       #: ``repr()`` of the exception

    def __str__(self):
        return "%s path failed for %s: %s" % (
            self.tier, self.detector, self.error,
        )


@dataclass
class GuardLog:
    """Accumulating record of ladder degradations (process-global)."""

    events: List[DegradationEvent] = field(default_factory=list)

    def record(self, tier: str, detector: str, exc: BaseException) -> None:
        event = DegradationEvent(tier, detector, repr(exc))
        self.events.append(event)
        logger.warning(
            "degrading to the next tier: %s", event, exc_info=exc
        )

    def count(self, tier: Optional[str] = None) -> int:
        if tier is None:
            return len(self.events)
        return sum(1 for event in self.events if event.tier == tier)

    def clear(self) -> None:
        del self.events[:]


#: Process-global degradation record; tests clear and inspect it.
GUARD_LOG = GuardLog()


def mark_plan_sharing(detectors) -> None:
    """Tell each CORD detector whether its coherence plan amortizes.

    The plan (:mod:`repro.cord.coherence`) is keyed by cache geometry
    and shared across a sweep's configurations; building one that no
    other configuration reuses costs about as much as the scalar pass it
    replaces (a cache-capacity sweep is all unique geometries).  The
    caller sees the whole detector list, so it can say which geometries
    appear at least twice; singletons keep the scalar loop.
    """
    from repro.cord.detector import CordDetector

    keys = {}
    for det in detectors:
        if type(det) is CordDetector and det._walkers is None:
            keys[id(det)] = det._coherence_key()
    counts = Counter(keys.values())
    for det in detectors:
        key = keys.get(id(det))
        if key is not None:
            det._plan_amortized = counts[key] >= 2


def compute_outcomes(
    specs: Sequence,
    n_threads: int,
    packed,
    allow_fused: bool = True,
    allow_packed: bool = True,
    guard_log: Optional[GuardLog] = None,
) -> Dict[str, "DetectionOutcome"]:  # noqa: F821 - doc reference
    """Analyze ``packed`` with every spec, degrading tiers on failure.

    The entry tier is selected by the flags (``allow_fused=False`` skips
    straight to the kernel tier; ``allow_packed=False`` to scalar) --
    the cross-check uses them to pin a tier; normal analysis leaves both
    True and only ever *descends*.
    """
    log = GUARD_LOG if guard_log is None else guard_log
    if not allow_packed:
        trace = Trace.from_packed(packed)
        return {
            spec.name: spec.build(n_threads).run(trace) for spec in specs
        }

    built = [(spec, spec.build(n_threads)) for spec in specs]
    mark_plan_sharing([det for _spec, det in built])
    fused_ids: frozenset = frozenset()
    if allow_fused and len(built) > 1:
        from repro.cord.fused import fuse_cord_detectors

        try:
            fused_ids = fuse_cord_detectors(
                [det for _spec, det in built], packed
            )
        except Exception as exc:  # noqa: BLE001 - the ladder's contract
            log.record("fused", "*", exc)
            # An aborted group pass may have half-materialized any
            # detector in the group: rebuild them all, cold.
            built = [(spec, spec.build(n_threads)) for spec in specs]
            mark_plan_sharing([det for _spec, det in built])
            fused_ids = frozenset()

    outcomes: Dict[str, object] = {}
    scalar_trace: Optional[Trace] = None
    for spec, det in built:
        try:
            if id(det) in fused_ids:
                outcomes[spec.name] = det.finish(packed)
            else:
                outcomes[spec.name] = det.run_packed(packed)
        except Exception as exc:  # noqa: BLE001 - the ladder's contract
            log.record("kernel", spec.name, exc)
            if scalar_trace is None:
                scalar_trace = Trace.from_packed(packed)
            fresh = spec.build(n_threads)
            try:
                outcomes[spec.name] = fresh.run(scalar_trace)
            except Exception as scalar_exc:
                raise DegradedPathError(
                    "configuration %r failed on every ladder tier "
                    "(last: scalar reference path raised %r; "
                    "accelerated-tier failure was %r)"
                    % (spec.name, scalar_exc, exc)
                ) from scalar_exc
    return outcomes


def _fingerprint(outcome):
    """Everything a report contains, as a comparable value."""
    log = getattr(outcome, "log", None)
    log_key = None
    if log is not None:
        log_key = (
            log.size_bytes,
            tuple((e.clock, e.thread, e.count) for e in log),
        )
    return (
        outcome.detector_name,
        tuple(sorted(outcome.flagged)),
        tuple(outcome.races),
        tuple(sorted(outcome.counters.items())),
        log_key,
    )


def verify_ladder_equivalence(
    specs: Sequence,
    n_threads: int,
    packed,
    primary: Dict[str, object],
) -> None:
    """Re-run the lower tiers and assert byte-identical reports.

    ``primary`` is the report set the normal (fused-first) analysis
    produced; the kernel and scalar tiers must reproduce it exactly.
    """
    tiers = (
        ("kernel", dict(allow_fused=False)),
        ("scalar", dict(allow_fused=False, allow_packed=False)),
    )
    want = {name: _fingerprint(out) for name, out in primary.items()}
    for tier, kwargs in tiers:
        alt = compute_outcomes(specs, n_threads, packed, **kwargs)
        for name, outcome in alt.items():
            if _fingerprint(outcome) != want[name]:
                raise PipelineError(
                    "REPRO_CROSS_CHECK: %r differs between the primary "
                    "analysis and the %s tier -- an accelerated path "
                    "is producing wrong reports" % (name, tier)
                )


def guarded_outcomes(
    specs: Sequence,
    n_threads: int,
    packed,
    guard_log: Optional[GuardLog] = None,
) -> Dict[str, object]:
    """The guarded analysis entry point used by the campaign layer."""
    outcomes = compute_outcomes(
        specs, n_threads, packed, guard_log=guard_log
    )
    if cross_check_enabled():
        verify_ladder_equivalence(specs, n_threads, packed, outcomes)
    return outcomes
