"""Pipeline resilience: supervision, self-healing storage, degradation.

The paper's promise is reliability of the record/detect pipeline itself
-- no false positives, always a replayable log.  This package gives our
*analysis* pipeline the same discipline: long campaigns survive dead or
hung workers (:mod:`~repro.resilience.supervisor`), corrupted on-disk
trace entries are detected, quarantined, and re-recorded
(:mod:`repro.trace.store`), and any failure in an accelerated analysis
path degrades to the next-slower byte-identical tier instead of taking
the sweep down (:mod:`~repro.resilience.guard`).  The fault points that
prove all of it live in :mod:`~repro.resilience.faults`.

See ``docs/resilience.md`` for the operator-facing overview and the
``REPRO_TASK_TIMEOUT`` / ``REPRO_MAX_RETRIES`` / ``REPRO_CROSS_CHECK``
/ ``REPRO_FAULTS`` environment knobs.
"""

from repro.resilience.guard import (
    GUARD_LOG,
    DegradationEvent,
    GuardLog,
    compute_outcomes,
    cross_check_enabled,
    guarded_outcomes,
    verify_ladder_equivalence,
)
from repro.resilience.supervisor import (
    RunReport,
    Supervisor,
    TaskOutcome,
    default_max_retries,
    default_task_timeout,
    run_supervised,
)

__all__ = [
    "GUARD_LOG",
    "DegradationEvent",
    "GuardLog",
    "RunReport",
    "Supervisor",
    "TaskOutcome",
    "compute_outcomes",
    "cross_check_enabled",
    "default_max_retries",
    "default_task_timeout",
    "guarded_outcomes",
    "run_supervised",
    "verify_ladder_equivalence",
]
