"""Pipeline resilience: supervision, self-healing storage, degradation.

The paper's promise is reliability of the record/detect pipeline itself
-- no false positives, always a replayable log.  This package gives our
*analysis* pipeline the same discipline: long campaigns survive dead or
hung workers (:mod:`~repro.resilience.supervisor`), corrupted on-disk
trace entries are detected, quarantined, and re-recorded
(:mod:`repro.trace.store`), and any failure in an accelerated analysis
path degrades to the next-slower byte-identical tier instead of taking
the sweep down (:mod:`~repro.resilience.guard`).  Death of the *driver*
process itself -- ``kill -9``, power loss, SIGTERM -- is survived too:
every durable artifact goes through one atomic-write helper and every
campaign's progress through a write-ahead journal, so an interrupted
sweep resumes to bit-identical results
(:mod:`~repro.resilience.checkpoint`, :mod:`~repro.resilience.journal`).
The fault points that prove all of it live in
:mod:`~repro.resilience.faults`.

See ``docs/resilience.md`` for the operator-facing overview and the
``REPRO_TASK_TIMEOUT`` / ``REPRO_MAX_RETRIES`` / ``REPRO_CROSS_CHECK``
/ ``REPRO_FAULTS`` / ``REPRO_FSYNC`` environment knobs.
"""

from repro.resilience.checkpoint import (
    GracefulShutdown,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    check_shutdown,
    collect_tmp_litter,
    prune_quarantine,
    request_shutdown,
)

from repro.resilience.guard import (
    GUARD_LOG,
    DegradationEvent,
    GuardLog,
    compute_outcomes,
    cross_check_enabled,
    guarded_outcomes,
    verify_ladder_equivalence,
)
from repro.resilience.supervisor import (
    RunReport,
    Supervisor,
    TaskOutcome,
    default_max_retries,
    default_task_timeout,
    run_supervised,
)

__all__ = [
    "GUARD_LOG",
    "DegradationEvent",
    "GracefulShutdown",
    "GuardLog",
    "RunReport",
    "Supervisor",
    "TaskOutcome",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "check_shutdown",
    "collect_tmp_litter",
    "compute_outcomes",
    "cross_check_enabled",
    "default_max_retries",
    "default_task_timeout",
    "guarded_outcomes",
    "prune_quarantine",
    "request_shutdown",
    "run_supervised",
    "verify_ladder_equivalence",
]

# The journal layer (RunCheckpoint, TaskCheckpoint, replay) is imported
# as :mod:`repro.resilience.journal` directly: it builds on the trace
# store, and importing it here would couple this package's import time
# to the store's.
