"""The per-run write-ahead journal and the checkpointed-run facade.

A campaign sweep is hours of deterministic work; the journal makes any
interruption of the *driver* process -- ``kill -9``, OOM, SIGTERM,
power loss -- cost at most the one unit of work in flight.  Each run
gets an append-only journal file under ``<root>/journal/`` whose
records log every task's lifecycle::

    begin -> scheduled(task) -> recorded(task)
          -> analyzed(task, config) ... -> committed(task) -> end

at per-config granularity, so a resumed sweep skips completed
*configurations*, not just completed workloads.

Records reuse the store's ``CORDSTOR1`` checksummed framing
(:func:`repro.trace.store.frame_payload`) around a canonical-JSON body,
concatenated in append order.  Replay walks the file front to back and
*stops* at the first torn or checksum-failing record: a crash mid-append
(or a power cut that ate the buffered tail) silently costs the torn
suffix, never the run.

The division of labor that makes resume safe:

* the **stores** are the source of truth -- every artifact (recorded
  trace, per-config outcome, committed run result, campaign cache
  entry) is written atomically and keyed by run identity, so redoing a
  step is always correct and a completed step is always reusable;
* the **journal** is the recovery index -- it names the run, records
  how far it got, and provides the transition points the chaos kill
  matrix exercises.  Losing journal records can only cause redundant
  (bit-identical) recomputation, never wrong results.

:class:`RunCheckpoint` packages both: run-id allocation, auto-resume of
the latest matching journal, startup garbage collection (orphaned
``*.tmp.*`` files, finished/stale journals, quarantine pruning), and
the per-task :class:`TaskCheckpoint` handles the campaign layer calls.
See ``docs/resilience.md`` section 6.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, Iterator, List, Optional, Set, Tuple

from repro.common.errors import StoreCorruptError
from repro.resilience import checkpoint, faults
from repro.trace.store import frame_payload, unframe_payload

logger = logging.getLogger("repro.resilience.journal")

#: Journal layout version, embedded in every ``begin`` record.
JOURNAL_SCHEMA = 1

#: Suffixes: an in-flight (resumable) journal vs a finished one.
WAL_SUFFIX = ".wal"
DONE_SUFFIX = ".done"

_RUN_ID_RE = re.compile(r"^(?P<ident>[0-9a-f]{8})-(?P<seq>\d{4})$")


def default_journal_keep() -> int:
    """Finished journals kept around (``REPRO_JOURNAL_KEEP``, default 8)."""
    raw = os.environ.get("REPRO_JOURNAL_KEEP", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return 8


def identity_digest(description) -> str:
    """Digest a run's identity (everything that determines its results)."""
    return hashlib.sha256(repr(description).encode()).hexdigest()[:16]


def _encode_record(record: Dict) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return frame_payload(body.encode("utf-8"))


#: Public names for the framed-record codec: the campaign service's job
#: WAL (:mod:`repro.service.jobs`) reuses the exact framing and replay
#: tolerance of the sweep journal rather than inventing a second format.
encode_record = _encode_record


def _iter_records(data: bytes, what: str) -> Iterator[Dict]:
    """Yield sound records front to back; stop at the first torn one."""
    offset = 0
    index = 0
    while offset < len(data):
        # Frames are self-delimiting: magic | u64 length | digest | body.
        # A record that fails any frame check is the torn tail a crash
        # or power cut left behind; everything before it is trustworthy.
        head = data[offset:]
        try:
            length = int.from_bytes(head[9:17], "little")
            record_len = 9 + 8 + 32 + length
            body = unframe_payload(
                head[:record_len], "%s record %d" % (what, index)
            )
            record = json.loads(body.decode("utf-8"))
        except (StoreCorruptError, ValueError, UnicodeDecodeError):
            logger.warning(
                "%s: torn tail at record %d (byte %d); replay stops here",
                what, index, offset,
            )
            return
        if not isinstance(record, dict) or "type" not in record:
            logger.warning(
                "%s: malformed record %d; replay stops here", what, index
            )
            return
        yield record
        offset += record_len
        index += 1


#: Public alias, paired with :data:`encode_record` (defined above).
iter_records = _iter_records


@dataclass
class TaskState:
    """Replayed journal view of one task's progress."""

    scheduled: bool = False
    recorded: bool = False
    analyzed: Set[str] = field(default_factory=set)
    committed: bool = False


@dataclass
class JournalState:
    """The replayed view of one journal file."""

    run_id: Optional[str] = None
    identity: Optional[str] = None
    kind: Optional[str] = None
    finished: bool = False
    tasks: Dict[str, TaskState] = field(default_factory=dict)
    n_records: int = 0

    def task(self, name: str) -> TaskState:
        if name not in self.tasks:
            self.tasks[name] = TaskState()
        return self.tasks[name]

    def summary(self) -> str:
        committed = sum(1 for t in self.tasks.values() if t.committed)
        analyzed = sum(len(t.analyzed) for t in self.tasks.values())
        return (
            "%d task(s) journaled, %d committed, %d config analyses "
            "durable" % (len(self.tasks), committed, analyzed)
        )


def replay(path: os.PathLike) -> JournalState:
    """Rebuild a :class:`JournalState` from a journal file on disk."""
    path = Path(path)
    state = JournalState()
    try:
        data = path.read_bytes()
    except OSError:
        return state
    for record in _iter_records(data, "journal %s" % path.name):
        state.n_records += 1
        rtype = record.get("type")
        if rtype == "begin":
            state.run_id = record.get("run_id")
            state.identity = record.get("identity")
            state.kind = record.get("kind")
        elif rtype == "scheduled":
            state.task(record["task"]).scheduled = True
        elif rtype == "recorded":
            state.task(record["task"]).recorded = True
        elif rtype == "analyzed":
            state.task(record["task"]).analyzed.add(record["config"])
        elif rtype == "committed":
            state.task(record["task"]).committed = True
        elif rtype == "end":
            state.finished = True
        # Unknown record types are skipped: a newer writer's journal
        # still resumes on an older reader (it just redoes more work).
    return state


class Journal:
    """One append-only journal file (records framed, replay-tolerant).

    Appends go to a buffered file handle and are flushed (to the OS)
    after every record; :meth:`sync` additionally ``fsync``\\ s at
    durability points (task commits, drains, finish).  The chaos
    driver-level faults hook the append path: ``power_cut`` dies
    *before* the flush (the record is lost with the buffer),
    ``driver_kill`` dies right after it, and ``sigterm_drain`` injects
    a graceful-shutdown request.
    """

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self._fh: Optional[IO[bytes]] = None

    def _handle(self) -> IO[bytes]:
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("ab")
        return self._fh

    def append(self, record: Dict, durable: bool = False) -> None:
        fh = self._handle()
        fh.write(_encode_record(record))
        if faults.active():
            self._chaos(fh)
        fh.flush()
        if durable and checkpoint.fsync_enabled():
            os.fsync(fh.fileno())
        if faults.active():
            self._chaos_flushed()

    def _chaos(self, fh: IO[bytes]) -> None:
        """Pre-flush fault points: the record may still be in the buffer."""
        if faults.tick("power_cut"):
            # A power loss: whatever sits in the userspace buffer is
            # gone.  os._exit skips interpreter cleanup (and flushing).
            os._exit(faults.POWER_CUT_EXIT_CODE)

    def _chaos_flushed(self) -> None:
        """Post-flush fault points: the record just became visible."""
        if faults.tick("driver_kill"):
            os._exit(faults.DRIVER_KILL_EXIT_CODE)
        if faults.tick("sigterm_drain"):
            checkpoint.request_shutdown()

    def sync(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            if checkpoint.fsync_enabled():
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            self._fh.close()
        self._fh = None


class TaskCheckpoint:
    """One task's journal handle: idempotent lifecycle transitions.

    Methods are no-ops when the replayed state already covers the
    transition, so a resumed run never duplicates records -- and every
    method is a shutdown safe point (:func:`checkpoint.check_shutdown`).
    """

    def __init__(self, owner: "RunCheckpoint", name: str):
        self._owner = owner
        self.name = name
        self.state = owner.state.task(name)

    def scheduled(self) -> None:
        self._owner.check()
        if not self.state.scheduled:
            self._owner._append({"type": "scheduled", "task": self.name})
            self.state.scheduled = True

    def recorded(self) -> None:
        self._owner.check()
        if not self.state.recorded:
            self._owner._append({"type": "recorded", "task": self.name})
            self.state.recorded = True

    def analyzed(self, config: str) -> None:
        self._owner.check()
        if config not in self.state.analyzed:
            self._owner._append({
                "type": "analyzed", "task": self.name, "config": config,
            })
            self.state.analyzed.add(config)

    def committed(self) -> None:
        # No shutdown check here: by commit time the work is already
        # done and durable, so even a draining run gets credit for it.
        if not self.state.committed:
            self._owner._append(
                {"type": "committed", "task": self.name}, durable=True
            )
            self.state.committed = True

    @property
    def was_committed(self) -> bool:
        """Did a previous (interrupted) run commit this task?"""
        return self.state.committed


class RunCheckpoint:
    """A resumable run: journal + startup GC + task handles.

    Open with :meth:`open` -- never construct directly.  ``stats``
    counts the housekeeping performed at startup (``tmp_pruned``,
    ``journals_pruned``, ``quarantine_pruned``) plus ``resumed`` (1 when
    an earlier journal was picked up) so nothing happens silently.
    """

    def __init__(self, root: Path, run_id: str, identity: str,
                 kind: str, state: JournalState, resumed: bool):
        self.root = root
        self.run_id = run_id
        self.identity = identity
        self.kind = kind
        self.state = state
        self.resumed = resumed
        self.stats: Counter = Counter()
        self.journal = Journal(self.journal_dir / (run_id + WAL_SUFFIX))
        self._finished = False

    # -- construction ---------------------------------------------------------

    @staticmethod
    def journal_dir_for(root: os.PathLike) -> Path:
        return Path(root) / "journal"

    @property
    def journal_dir(self) -> Path:
        return self.journal_dir_for(self.root)

    @classmethod
    def open(
        cls,
        root: os.PathLike,
        identity,
        kind: str = "run",
        resume: Optional[str] = "auto",
        quarantine_dirs: Tuple[os.PathLike, ...] = (),
    ) -> "RunCheckpoint":
        """Open (and possibly resume) a checkpointed run under ``root``.

        ``identity`` is anything ``repr``-able that pins the run's
        results (config, seeds, workloads); it is digested and must
        match for a journal to be resumed.  ``resume`` is ``"auto"``
        (pick up the latest unfinished journal with this identity, else
        start fresh -- the default), ``"fresh"`` (always start a new
        journal), or an explicit run id.  Startup also collects the
        litter a dead process left: orphaned ``*.tmp.*`` files, old
        finished journals, and oversized quarantine directories.
        """
        root = Path(root)
        ident = identity_digest(identity)
        jdir = cls.journal_dir_for(root)
        stats = Counter()
        stats["tmp_pruned"] = checkpoint.collect_tmp_litter(root)
        stats["journals_pruned"] = cls._prune_journals(jdir)
        for qdir in quarantine_dirs:
            stats["quarantine_pruned"] += checkpoint.prune_quarantine(qdir)

        state = JournalState()
        run_id = None
        resumed = False
        if resume != "fresh":
            candidate = cls._pick_journal(jdir, ident, resume)
            if candidate is not None:
                replayed = replay(candidate)
                if replayed.identity == ident:
                    state = replayed
                    run_id = candidate.name[: -len(WAL_SUFFIX)] \
                        if candidate.name.endswith(WAL_SUFFIX) \
                        else candidate.name[: -len(DONE_SUFFIX)]
                    resumed = True
                    if candidate.name.endswith(DONE_SUFFIX):
                        # Resuming a finished run re-opens its journal
                        # as in-flight; everything is committed, so the
                        # run will just replay its caches and finish.
                        os.replace(
                            candidate, jdir / (run_id + WAL_SUFFIX)
                        )
                        state.finished = False
                elif resume not in (None, "auto"):
                    raise StoreCorruptError(
                        "journal %s does not match this run's identity "
                        "(journal: %s, run: %s) -- refusing to resume "
                        "into different results"
                        % (candidate.name, replayed.identity, ident)
                    )
        if run_id is None:
            run_id = cls._new_run_id(jdir, ident)

        ckpt = cls(root, run_id, ident, kind, state, resumed)
        ckpt.stats.update(stats)
        if resumed:
            ckpt.stats["resumed"] = 1
            logger.info(
                "resuming run %s: %s", run_id, state.summary()
            )
        if state.n_records == 0:
            ckpt._append({
                "type": "begin",
                "schema": JOURNAL_SCHEMA,
                "run_id": run_id,
                "identity": ident,
                "kind": kind,
            })
        return ckpt

    @staticmethod
    def _prune_journals(jdir: Path, keep: Optional[int] = None) -> int:
        """Drop old finished journals beyond the keep-count."""
        if not jdir.is_dir():
            return 0
        if keep is None:
            keep = default_journal_keep()
        done = sorted(
            (p for p in jdir.iterdir() if p.name.endswith(DONE_SUFFIX)),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        pruned = 0
        for path in done[keep:]:
            try:
                path.unlink()
                pruned += 1
            except OSError:
                pass
        return pruned

    @staticmethod
    def _pick_journal(
        jdir: Path, ident: str, resume: Optional[str]
    ) -> Optional[Path]:
        if resume not in (None, "auto"):
            for suffix in (WAL_SUFFIX, DONE_SUFFIX):
                path = jdir / (resume + suffix)
                if path.exists():
                    return path
            raise StoreCorruptError(
                "no journal named %r under %s (nothing to resume)"
                % (resume, jdir)
            )
        if not jdir.is_dir():
            return None
        # Auto-resume: the latest unfinished journal for this identity.
        # Finished journals are not auto-resumed -- a fresh invocation
        # of a finished run should run fresh (its caches make it fast).
        candidates = [
            p for p in jdir.iterdir()
            if p.name.endswith(WAL_SUFFIX)
            and p.name.startswith(ident[:8] + "-")
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.stat().st_mtime)

    @staticmethod
    def _new_run_id(jdir: Path, ident: str) -> str:
        """``<identity[:8]>-<seq>``: readable, sortable, timestamp-free."""
        seq = 0
        if jdir.is_dir():
            for path in jdir.iterdir():
                name = path.name
                for suffix in (WAL_SUFFIX, DONE_SUFFIX):
                    if name.endswith(suffix):
                        name = name[: -len(suffix)]
                        break
                match = _RUN_ID_RE.match(name)
                if match and match.group("ident") == ident[:8]:
                    seq = max(seq, int(match.group("seq")))
        return "%s-%04d" % (ident[:8], seq + 1)

    # -- journal plumbing -----------------------------------------------------

    def _append(self, record: Dict, durable: bool = False) -> None:
        if self._finished:
            return
        self.journal.append(record, durable=durable)
        self.state.n_records += 1

    def task(self, name: str) -> TaskCheckpoint:
        return TaskCheckpoint(self, name)

    def check(self) -> None:
        """Shutdown safe point: raise (resumable) if a drain was requested."""
        checkpoint.check_shutdown(self.run_id)

    def interrupt(self) -> None:
        """Flush everything for a resumable exit (drain path)."""
        self.journal.sync()
        self.journal.close()

    def finish(self) -> None:
        """Seal the journal: ``end`` record, fsync, rename to ``.done``."""
        if self._finished:
            return
        self._append({"type": "end"}, durable=True)
        self.journal.sync()
        self.journal.close()
        self._finished = True
        wal = self.journal_dir / (self.run_id + WAL_SUFFIX)
        try:
            os.replace(wal, self.journal_dir / (self.run_id + DONE_SUFFIX))
        except OSError as exc:
            logger.warning("could not seal journal %s: %s", wal, exc)

    def close(self) -> None:
        self.journal.close()


def latest_run_id(root: os.PathLike, identity) -> Optional[str]:
    """The newest unfinished run id for ``identity`` under ``root``."""
    jdir = RunCheckpoint.journal_dir_for(root)
    ident = identity_digest(identity)
    try:
        candidate = RunCheckpoint._pick_journal(jdir, ident, None)
    except StoreCorruptError:
        return None
    if candidate is None:
        return None
    return candidate.name[: -len(WAL_SUFFIX)]
