"""Chaos-harness fault points.

The resilience stack (supervisor, trace store, degradation ladder) is
only trustworthy if its failure paths actually run, so the pipeline
carries a handful of *fault points* -- named sites where a test (or an
operator hunting a heisenbug) can inject the failure the path exists to
survive.  With no faults armed every hook is a single cheap boolean
check, so production runs pay nothing.

Faults are armed through the ``REPRO_FAULTS`` environment variable (or
programmatically via :func:`arm`), as a comma-separated list of
``name[:charges]`` entries::

    REPRO_FAULTS="fused_raise:2,store_truncate"

Each armed fault carries a *charge budget* (default 1).  In-process
faults (:func:`fire`) consume one charge per firing and go quiet when
the budget is spent -- so a retry or a re-record after the injected
failure succeeds, which is exactly the recovery the chaos tests assert.
Worker-level faults (:func:`should_fire`) are evaluated in freshly
spawned supervisor children, where a per-process budget would reset on
every attempt; they are gated on the *attempt number* instead
(``attempt < charges``), which is deterministic across processes: a
``worker_kill:1`` kills every task's first attempt and no retry.

Fault points wired into the pipeline:

=================  =========================================================
``worker_kill``    supervisor child exits hard (``os._exit``) before working
``worker_stall``   supervisor child sleeps ``REPRO_FAULT_STALL_SECONDS``
                   (default 30) before working, tripping the task deadline
``store_truncate`` :class:`~repro.trace.store.PackedTraceStore` writes only
                   half of an entry's frame (a torn write)
``batch_raise``    the multi-run batch-prime arena pass raises at entry
``fused_raise``    the interval-fused sweep pass raises at entry
``kernel_raise``   ``CordDetector._process_packed_kernel`` raises at entry
``driver_kill``    the *driver* process exits hard (``os._exit``) right
                   after flushing a journal transition (a ``kill -9``)
``power_cut``      the driver exits hard with the journal tail still in
                   the write buffer (a power loss: the record is torn off)
``sigterm_drain``  a graceful-shutdown request is injected at a journal
                   transition, as if SIGTERM had just arrived
``svc_kill``       the campaign *server* exits hard (``os._exit``) right
                   after flushing a job-state WAL transition
``queue_full``     the service admission controller rejects the next
                   submission as if ``REPRO_SVC_QUEUE_MAX`` were hit
``tenant_flood``   the service admission controller rejects the next
                   submission as if the tenant's quota were exhausted
``store_corrupt_mid_job``
                   a service job's durable trace entry is truncated in
                   place between its record and analyze phases (the
                   self-healing store must quarantine and re-record)
``worker_vanish``  a remote ``cord-worker`` process exits hard
                   (``os._exit``) at a lease-lifecycle transition, as if
                   the host died mid-shard
``lease_stall``    a remote worker freezes for
                   ``REPRO_FAULT_STALL_SECONDS`` at a lease-lifecycle
                   transition, overrunning its lease deadline so the
                   server reassigns the shard (and the late completion
                   must be deduped)
``net_partition``  the remote worker's link to the server drops: its
                   next ``REPRO_FAULT_PARTITION_REQUESTS`` (default 8)
                   requests fail as connection errors, then the
                   partition heals
``replica_corrupt``
                   one store-replication payload is corrupted in flight;
                   the sha256 check on receipt must quarantine it and
                   the transfer must be retried
=================  =========================================================

The driver- and server-level kill faults use *tick* semantics
(:func:`tick`) rather than charge budgets: ``driver_kill:5`` fires at
exactly the fifth journal transition of the process (``svc_kill:5`` at
the fifth job-WAL transition), which is what lets the resume test
matrices kill the process at *every* transition point in turn.  The
remote-worker faults (``worker_vanish``, ``lease_stall``,
``net_partition``) are tick-gated on the worker's lease-lifecycle
transitions and ``replica_corrupt`` on successive replication
transfers, for the same reason: the multi-host matrix places one fault
at every transition in turn.  The service admission faults
(``queue_full``, ``tenant_flood``, ``store_corrupt_mid_job``) are
ordinary charge-budget faults.

This module must stay import-light (stdlib only): it is imported by the
trace store and the CORD hot paths, and must never create an import
cycle with them.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

_ENV = "REPRO_FAULTS"
_STALL_ENV = "REPRO_FAULT_STALL_SECONDS"
_PARTITION_ENV = "REPRO_FAULT_PARTITION_REQUESTS"

#: Exit status a ``worker_kill`` child dies with (distinguishable from a
#: crash in the campaign itself, which reports through the result pipe).
KILL_EXIT_CODE = 86

#: Exit status of a ``driver_kill`` fault (the driver's ``kill -9``).
DRIVER_KILL_EXIT_CODE = 87

#: Exit status of a ``power_cut`` fault (exit with unflushed journal).
POWER_CUT_EXIT_CODE = 88

#: Exit status of an ``svc_kill`` fault (the campaign server's ``kill -9``,
#: fired right after a job-state WAL transition became durable).
SVC_KILL_EXIT_CODE = 89

#: Exit status of a ``worker_vanish`` fault (a remote ``cord-worker``
#: dying hard at a lease-lifecycle transition).
WORKER_VANISH_EXIT_CODE = 90

#: Per-process armed faults: name -> remaining charges.  ``None`` means
#: the environment has not been parsed yet (lazily, so tests can set the
#: variable after import).
_armed: Optional[Dict[str, int]] = None

#: Per-process tick counters for :func:`tick`-gated faults.
_ticks: Dict[str, int] = {}


def _parse(spec: str) -> Dict[str, int]:
    plan: Dict[str, int] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, charges = item.partition(":")
        name = name.strip()
        if not name:
            continue
        try:
            count = int(charges) if charges.strip() else 1
        except ValueError:
            count = 1
        if count > 0:
            plan[name] = count
    return plan


def _plan() -> Dict[str, int]:
    global _armed
    if _armed is None:
        _armed = _parse(os.environ.get(_ENV, ""))
    return _armed


def arm(spec: Optional[str] = None) -> None:
    """(Re)arm faults from ``spec``, or re-read ``REPRO_FAULTS``.

    Tests call this after ``monkeypatch.setenv`` so the per-process
    charge budgets reset; ``arm("")`` disarms everything.
    """
    global _armed
    _armed = _parse(os.environ.get(_ENV, "") if spec is None else spec)
    _ticks.clear()


def reset() -> None:
    """Forget all parsed state; the next check re-reads the environment."""
    global _armed
    _armed = None
    _ticks.clear()


def active() -> bool:
    """Is any fault armed at all?  (The hot paths' one-boolean gate.)"""
    return bool(_plan())


def fire(name: str) -> bool:
    """Consume one charge of ``name`` if armed; True when the fault fires.

    In-process fault points call this exactly where the failure should
    originate, e.g. ``if faults.fire("fused_raise"): raise ...``.
    """
    plan = _plan()
    if not plan:
        return False
    left = plan.get(name, 0)
    if left <= 0:
        return False
    plan[name] = left - 1
    return True


def tick(name: str) -> bool:
    """Advance ``name``'s tick counter; True exactly at the armed tick.

    Tick-gated fault points (the driver-level faults) call this once per
    transition: ``driver_kill:5`` fires at exactly the fifth call and
    never again.  Unlike :func:`fire` the armed value is a *position*,
    not a budget, which lets a test matrix place one fault at each
    successive transition of a run.
    """
    plan = _plan()
    if not plan or name not in plan:
        return False
    _ticks[name] = _ticks.get(name, 0) + 1
    return _ticks[name] == plan[name]


def should_fire(name: str, attempt: int) -> bool:
    """Non-consuming, attempt-gated check for cross-process fault points.

    Fires while ``attempt < charges``: deterministic no matter how many
    fresh worker processes evaluate it, so a retried task heals once its
    attempt number climbs past the budget.
    """
    plan = _plan()
    if not plan:
        return False
    return attempt < plan.get(name, 0)


def stall_seconds() -> float:
    """How long a ``worker_stall`` fault sleeps (``REPRO_FAULT_STALL_SECONDS``)."""
    raw = os.environ.get(_STALL_ENV, "").strip()
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return 30.0


def partition_requests() -> int:
    """How many requests a ``net_partition`` window fails
    (``REPRO_FAULT_PARTITION_REQUESTS``)."""
    raw = os.environ.get(_PARTITION_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 8


def worker_entry(attempt: int) -> None:
    """The supervisor child's fault hook, called before the task body.

    ``worker_kill`` exits the process without a word (the parent sees a
    dead worker with no result -- the crash it must survive);
    ``worker_stall`` sleeps long enough to trip the task deadline.
    """
    if not active():
        return
    if should_fire("worker_kill", attempt):
        os._exit(KILL_EXIT_CODE)
    if should_fire("worker_stall", attempt):
        import time

        time.sleep(stall_seconds())
