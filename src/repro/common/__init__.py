"""Shared low-level utilities for the CORD reproduction.

This subpackage holds the pieces that every other layer builds on:

* :mod:`repro.common.types` -- small value types (thread ids, addresses,
  access descriptors) used throughout the simulator and the detectors.
* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.rng` -- deterministic, seedable random streams so that
  every experiment in the paper reproduction is exactly repeatable.
* :mod:`repro.common.bitops` -- bit-mask helpers for per-word access bits.
* :mod:`repro.common.texttable` -- plain-text table rendering used by the
  experiment drivers to print the paper's tables and figure series.
"""

from repro.common.errors import (
    CordError,
    ConfigError,
    DeadlockError,
    LogFormatError,
    ReplayDivergenceError,
    SimulationError,
)
from repro.common.types import (
    AccessMode,
    AccessClass,
    Access,
    WORD_SIZE,
    ThreadId,
    Address,
)

__all__ = [
    "Access",
    "AccessClass",
    "AccessMode",
    "Address",
    "ConfigError",
    "CordError",
    "DeadlockError",
    "LogFormatError",
    "ReplayDivergenceError",
    "SimulationError",
    "ThreadId",
    "WORD_SIZE",
]
