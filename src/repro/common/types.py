"""Small value types shared by the simulator, detectors, and experiments.

The paper reasons about *accesses*: a thread touches a word of shared memory
in read or write mode, and the access is either a *synchronization* access
(issued by a synchronization primitive through special labeled instructions,
Section 2.7.3) or an ordinary *data* access.  :class:`Access` captures exactly
that triple plus the location.

Addresses in this reproduction are word-granular integers.  ``WORD_SIZE`` is
the byte width of one word (4 bytes, matching the paper's per-word access
bits on 64-byte lines, i.e. 16 words per line).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Width of one machine word in bytes.  The paper tracks read/write access
#: bits per word; with 64-byte lines and 4-byte words each line carries 16
#: word slots per timestamp entry.
WORD_SIZE = 4

#: Type alias: threads are small non-negative integers.
ThreadId = int

#: Type alias: byte addresses are non-negative integers.
Address = int


class AccessMode(enum.IntEnum):
    """Read or write mode of a memory access."""

    READ = 0
    WRITE = 1

    @property
    def is_write(self) -> bool:
        return self is AccessMode.WRITE


class AccessClass(enum.IntEnum):
    """Data vs. synchronization classification of an access.

    The paper relies on modified synchronization libraries that mark
    synchronization loads/stores with special instructions (Section 2.7.3);
    this enum is the software-visible equivalent of that label.
    """

    DATA = 0
    SYNC = 1

    @property
    def is_sync(self) -> bool:
        return self is AccessClass.SYNC


@dataclass(frozen=True)
class Access:
    """One memory access: who, where, read/write, data/sync.

    Attributes:
        thread: id of the issuing thread.
        address: byte address of the accessed word (word aligned).
        mode: read or write.
        klass: data or synchronization access.
    """

    thread: ThreadId
    address: Address
    mode: AccessMode
    klass: AccessClass = AccessClass.DATA

    def __post_init__(self):
        if self.address % WORD_SIZE:
            raise ValueError(
                "access address %#x is not word aligned" % self.address
            )

    @property
    def is_write(self) -> bool:
        return self.mode is AccessMode.WRITE

    @property
    def is_sync(self) -> bool:
        return self.klass is AccessClass.SYNC

    def conflicts_with(self, other: "Access") -> bool:
        """True if the two accesses conflict in the Shasha/Snir sense.

        Two accesses from *different* threads conflict when they touch the
        same location and at least one is a write (Section 2.1).
        """
        return (
            self.thread != other.thread
            and self.address == other.address
            and (self.is_write or other.is_write)
        )


def word_index(address: Address, line_size: int) -> int:
    """Index of the word ``address`` falls in within its cache line."""
    return (address % line_size) // WORD_SIZE


def line_address(address: Address, line_size: int) -> Address:
    """Base address of the cache line containing ``address``."""
    return address - (address % line_size)
