"""Deterministic random-number plumbing.

Every source of randomness in the reproduction -- workload shapes, the
interleaving scheduler, the fault injector -- draws from a
:class:`DeterministicRng` derived from a single experiment seed, so that any
figure in EXPERIMENTS.md can be regenerated bit-for-bit.

Sub-streams are derived by *name* rather than by call order
(:meth:`DeterministicRng.fork`), so adding a new consumer of randomness does
not silently perturb existing experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(seed: int, name: str) -> int:
    """Derive a child seed from ``seed`` and a textual stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per process and must not be used).
    """
    digest = hashlib.sha256(
        b"%d/%s" % (seed, name.encode("utf-8"))
    ).digest()
    return int.from_bytes(digest[:8], "big")


class DeterministicRng:
    """A named, forkable wrapper around :class:`random.Random`.

    Args:
        seed: integer seed for this stream.
        name: human-readable stream name (kept for diagnostics).
    """

    def __init__(self, seed: int, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self.seed)

    def fork(self, name: str) -> "DeterministicRng":
        """Create an independent child stream identified by ``name``.

        Forking is a pure function of ``(self.seed, name)``: the child does
        not consume state from the parent, so the order in which forks are
        created never matters.
        """
        return DeterministicRng(_derive_seed(self.seed, name), name)

    # -- thin delegation to random.Random ---------------------------------

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._random.randint(lo, hi)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        return self._random.randrange(n)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """``k`` distinct elements sampled without replacement."""
        return self._random.sample(seq, k)

    def expovariate(self, lam: float) -> float:
        """Exponentially distributed float with rate ``lam``."""
        return self._random.expovariate(lam)

    def geometric(self, p: float) -> int:
        """Geometric number of trials until first success (>= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1], got %r" % (p,))
        count = 1
        while self._random.random() >= p:
            count += 1
        return count

    def __repr__(self):
        return "DeterministicRng(seed=%d, name=%r)" % (self.seed, self.name)


def seeds_for_runs(base_seed: int, count: int, name: str) -> Iterator[int]:
    """Yield ``count`` independent run seeds for a named experiment."""
    root = DeterministicRng(base_seed, name)
    for index in range(count):
        yield _derive_seed(root.seed, "%s/run%d" % (name, index))
