"""Exception hierarchy for the CORD reproduction.

All library-raised exceptions derive from :class:`CordError`, so callers can
catch one base class.  Each subclass marks a distinct failure domain:
configuration, simulation, log encoding, and replay verification.
"""


class CordError(Exception):
    """Base class for every exception raised by this library."""


class ConfigError(CordError, ValueError):
    """A configuration value is invalid or inconsistent.

    Raised eagerly at construction time (for example, a cache size that is
    not a multiple of the line size, or a window parameter ``D`` below 1),
    so misconfiguration never surfaces as a confusing mid-simulation error.
    """


class SimulationError(CordError, RuntimeError):
    """The functional or timing simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """Every runnable thread is blocked and no progress is possible.

    Fault injection can legitimately deadlock a run (for example a lost
    barrier-count update after an injected missing lock).  The engine raises
    this error -- or, when configured with a watchdog, records the hang and
    force-releases the blocked threads instead.
    """

    def __init__(self, blocked_threads, message=None):
        self.blocked_threads = tuple(blocked_threads)
        if message is None:
            message = "all threads blocked: %s" % (self.blocked_threads,)
        super().__init__(message)


class LogFormatError(CordError, ValueError):
    """An order-recording log is malformed or truncated."""


class ReplayDivergenceError(CordError, RuntimeError):
    """Deterministic replay observed an execution that differs from the log.

    This indicates either a corrupted log or a genuine order-recording bug;
    the paper's correctness claim is exactly that this never happens.
    """

    def __init__(self, thread_id, detail):
        self.thread_id = thread_id
        self.detail = detail
        super().__init__(
            "replay diverged in thread %d: %s" % (thread_id, detail)
        )
