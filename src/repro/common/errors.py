"""Exception hierarchy for the CORD reproduction.

All library-raised exceptions derive from :class:`CordError`, so callers can
catch one base class.  Each subclass marks a distinct failure domain:
configuration, simulation, log encoding, and replay verification.
"""


class CordError(Exception):
    """Base class for every exception raised by this library."""


class ConfigError(CordError, ValueError):
    """A configuration value is invalid or inconsistent.

    Raised eagerly at construction time (for example, a cache size that is
    not a multiple of the line size, or a window parameter ``D`` below 1),
    so misconfiguration never surfaces as a confusing mid-simulation error.
    """


class SimulationError(CordError, RuntimeError):
    """The functional or timing simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """Every runnable thread is blocked and no progress is possible.

    Fault injection can legitimately deadlock a run (for example a lost
    barrier-count update after an injected missing lock).  The engine raises
    this error -- or, when configured with a watchdog, records the hang and
    force-releases the blocked threads instead.
    """

    def __init__(self, blocked_threads, message=None):
        self.blocked_threads = tuple(blocked_threads)
        if message is None:
            message = "all threads blocked: %s" % (self.blocked_threads,)
        super().__init__(message)


class LogFormatError(CordError, ValueError):
    """An order-recording log is malformed or truncated."""


class PipelineError(CordError, RuntimeError):
    """The analysis *pipeline* (not the simulated hardware) failed.

    Base class of the resilience taxonomy: everything under it marks a
    fault in our own record/analyze machinery -- a dead worker, a
    corrupted cache entry, an accelerated path that had to be abandoned.
    The simulated CORD hardware never raises these; the supervisor,
    trace store, and degradation ladder do (see ``docs/resilience.md``).
    """


class WorkerTimeoutError(PipelineError):
    """A supervised campaign worker missed its deadline (or died).

    Raised (or recorded in a :class:`~repro.resilience.supervisor.RunReport`)
    when a fan-out task exhausts its retry budget; a single timeout only
    triggers a backoff-and-retry, never this error.
    """

    def __init__(self, task, attempts, message=None):
        self.task = task
        self.attempts = attempts
        if message is None:
            message = "task %r missed its deadline %d time(s)" % (
                task, attempts,
            )
        super().__init__(message)


class StoreCorruptError(PipelineError):
    """An on-disk cache entry failed its integrity check.

    Covers torn, truncated, and bit-flipped files: bad frame magic,
    length mismatches, and payload checksum failures.  The store reacts
    by quarantining the file and re-recording -- this error is how the
    corruption is *named*, not a fatal condition on the read path.
    """


class InterruptedRunError(PipelineError):
    """A campaign or sweep was interrupted at a resumable point.

    Raised when a graceful-shutdown request (SIGTERM/SIGINT, or the
    chaos ``sigterm_drain`` fault) drains the pipeline mid-run: workers
    are reaped, the write-ahead journal is flushed, and every finished
    unit of work is already durable, so re-running with ``--resume``
    (or the same cache directory) completes the run bit-identically.
    The CLI maps this to exit code 71 -- "interrupted, resumable".
    """

    def __init__(self, run_id=None, message=None):
        self.run_id = run_id
        if message is None:
            if run_id is None:
                message = "run interrupted at a resumable point"
            else:
                message = (
                    "run %s interrupted at a resumable point; re-run "
                    "with --resume %s (or the same cache directory) to "
                    "continue" % (run_id, run_id)
                )
        super().__init__(message)


class DegradedPathError(PipelineError):
    """Every rung of the degradation ladder failed for one configuration.

    The guard re-runs a configuration on the next-slower path
    (fused -> kernel -> pure-python scalar) when an accelerated pass
    raises; this error means even the scalar reference path failed, so
    there is no correct result to return.
    """


class ReplayDivergenceError(CordError, RuntimeError):
    """Deterministic replay observed an execution that differs from the log.

    This indicates either a corrupted log or a genuine order-recording bug;
    the paper's correctness claim is exactly that this never happens.
    """

    def __init__(self, thread_id, detail):
        self.thread_id = thread_id
        self.detail = detail
        super().__init__(
            "replay diverged in thread %d: %s" % (thread_id, detail)
        )
