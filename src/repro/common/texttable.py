"""Plain-text table rendering for experiment output.

The experiment drivers print the paper's tables and figure series as aligned
ASCII tables; nothing fancier than that is needed for terminal inspection
and for EXPERIMENTS.md snippets.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with three decimals; everything else uses ``str``.
    The first column is left-aligned, remaining columns right-aligned (the
    usual layout for a label column followed by numeric columns).
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([_format_cell(cell) for cell in row])

    widths = [0] * len(rendered[0])
    for row in rendered:
        if len(row) != len(widths):
            raise ValueError(
                "row has %d cells, expected %d" % (len(row), len(widths))
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    lines = []
    if title:
        lines.append(title)
    header_line = _format_row(rendered[0], widths)
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered[1:]:
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    parts = [cells[0].ljust(widths[0])]
    for cell, width in zip(cells[1:], widths[1:]):
        parts.append(cell.rjust(width))
    return "  ".join(parts).rstrip()


def format_percent(value: float) -> str:
    """Format a ratio as a percentage string, e.g. ``0.773 -> '77.3%'``."""
    return "%.1f%%" % (100.0 * value)
