"""Bit-mask helpers for per-word access bits.

CORD's cache metadata keeps one read bit and one write bit per word per
timestamp entry (Section 2.3).  We store each bit set as a plain Python int
used as a bit mask; these helpers keep the call sites readable.
"""

from __future__ import annotations

from typing import Iterator


def bit(index: int) -> int:
    """Mask with only bit ``index`` set."""
    return 1 << index


def set_bit(mask: int, index: int) -> int:
    """Return ``mask`` with bit ``index`` set."""
    return mask | (1 << index)


def clear_bit(mask: int, index: int) -> int:
    """Return ``mask`` with bit ``index`` cleared."""
    return mask & ~(1 << index)


def test_bit(mask: int, index: int) -> bool:
    """True if bit ``index`` is set in ``mask``."""
    return bool(mask & (1 << index))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of all set bits, ascending."""
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


def popcount(mask: int) -> int:
    """Number of set bits."""
    return bin(mask).count("1")


def low_mask(width: int) -> int:
    """Mask with the low ``width`` bits set."""
    return (1 << width) - 1
