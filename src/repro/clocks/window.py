"""16-bit clocks with sliding-window comparison (Section 2.7.5).

CORD stores 16-bit clocks and timestamps in cache metadata to keep the area
overhead at 19 % of cache capacity.  Sixteen-bit counters overflow, so the
hardware compares them *modulo 2^16* under the assumption that any two live
values are within a window of ``2^15 - 1`` of each other.  A cache walker
(:mod:`repro.meta.walker`) evicts very stale timestamps so the assumption
holds, and the minimum in-cache timestamp is used to stall any clock update
that would exceed the window (the paper reports such stalls never fire).

The functional detectors in this library track clocks as unbounded Python
integers for clarity; this module provides the hardware-faithful comparator
plus the truncation helpers, and the unit/property tests prove that the
windowed comparison agrees with the unbounded one whenever the window
invariant holds.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

#: Width of hardware clocks and timestamps in bits.
WINDOW_CLOCK_BITS = 16

#: Largest allowed distance between two live clock values.
DEFAULT_WINDOW = (1 << (WINDOW_CLOCK_BITS - 1)) - 1


class SlidingWindowComparator:
    """Compare clock values truncated to ``bits`` bits, window-correctly.

    Two truncated values ``a`` and ``b`` are compared by interpreting their
    difference modulo ``2^bits`` as a signed number: if the (signed)
    difference is positive, ``a`` is ahead of ``b``.  This is the standard
    serial-number-arithmetic trick and is exactly what a "slight
    modification in our comparator circuitry" buys the paper.

    Args:
        bits: clock width in bits (default 16, as in the paper).
    """

    def __init__(self, bits: int = WINDOW_CLOCK_BITS):
        if bits < 2:
            raise ConfigError("clock width must be >= 2 bits, got %d" % bits)
        self.bits = bits
        self.modulus = 1 << bits
        self.half = 1 << (bits - 1)
        #: Maximum distance between live values for comparisons to be exact.
        self.window = self.half - 1

    def truncate(self, value: int) -> int:
        """Truncate an unbounded clock value to the hardware width."""
        return value % self.modulus

    def signed_delta(self, a: int, b: int) -> int:
        """Signed distance ``a - b`` under the sliding window.

        The result lies in ``[-half, half)``.
        """
        delta = (self.truncate(a) - self.truncate(b)) % self.modulus
        if delta >= self.half:
            delta -= self.modulus
        return delta

    def greater(self, a: int, b: int) -> bool:
        """Windowed ``a > b``."""
        return self.signed_delta(a, b) > 0

    def greater_equal(self, a: int, b: int) -> bool:
        """Windowed ``a >= b``."""
        return self.signed_delta(a, b) >= 0

    def synchronized_after(self, clock: int, timestamp: int, d: int) -> bool:
        """Windowed form of CORD's DRD test ``clock >= timestamp + D``."""
        return self.signed_delta(clock, timestamp) >= d

    def within_window(self, a: int, b: int) -> bool:
        """True when the *unbounded* values are close enough for windowed
        comparison to be exact.

        Callers must pass unbounded values here; this is the invariant the
        cache walker maintains.
        """
        return abs(a - b) <= self.window
