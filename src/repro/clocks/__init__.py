"""Logical clocks: scalar (CORD), Lamport, and vector clocks.

The paper contrasts three clocking schemes:

* classical **Lamport clocks** (sequence number + tie-breaking thread id,
  Section 2.4) which impose a total order;
* CORD's **scalar clocks** -- plain integers with *no* tie-break, so that
  equality can express concurrency, with the ``clk = ts + 1`` race update
  and the sync-read window update ``clk = max(clk, ts + D)`` (Section 2.6);
* **vector clocks** (Fidge/Mattern) that capture the happens-before relation
  exactly and are used by the Ideal and ReEnact-like comparison configs.

The 16-bit hardware clock with sliding-window comparison (Section 2.7.5) is
modeled in :mod:`repro.clocks.window`.
"""

from repro.clocks.scalar import ScalarClock
from repro.clocks.lamport import LamportClock, LamportStamp
from repro.clocks.vector import VectorClock
from repro.clocks.window import SlidingWindowComparator, WINDOW_CLOCK_BITS

__all__ = [
    "LamportClock",
    "LamportStamp",
    "ScalarClock",
    "SlidingWindowComparator",
    "VectorClock",
    "WINDOW_CLOCK_BITS",
]
