"""Vector clocks (Fidge/Mattern) for the Ideal and ReEnact-like detectors.

A vector clock has one scalar component per thread and captures the
happens-before relation exactly; the paper cites Valot's result that no
scheme with fewer than N components can do so for N threads.  CORD's whole
point is to *avoid* vectors in hardware, but the evaluation compares against
vector-clock configurations throughout Section 4, so we need a faithful
implementation.

Vectors here are immutable tuples wrapped in a tiny class; detector state
tables store millions of them, so they must hash and compare cheaply.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.common.errors import ConfigError


class VectorClock:
    """An immutable vector timestamp over a fixed thread count.

    Components are conventionally the number of (relevant) events each
    thread has performed.  The partial order is component-wise:

    * ``a <= b``  iff every component of ``a`` is <= the matching one of ``b``;
    * ``a.happens_before(b)`` iff ``a <= b`` and ``a != b``;
    * ``a.concurrent_with(b)`` iff neither dominates.
    """

    __slots__ = ("components",)

    def __init__(self, components: Iterable[int]):
        comps: Tuple[int, ...] = tuple(int(c) for c in components)
        if not comps:
            raise ConfigError("vector clock needs at least one component")
        if any(c < 0 for c in comps):
            raise ConfigError("vector clock components must be >= 0")
        object.__setattr__(self, "components", comps)

    def __setattr__(self, name, value):
        raise AttributeError("VectorClock is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls, width: int) -> "VectorClock":
        """All-zero vector of the given width."""
        return cls((0,) * width)

    @classmethod
    def unit(cls, width: int, thread: int) -> "VectorClock":
        """Vector with a single 1 in ``thread``'s component."""
        comps = [0] * width
        comps[thread] = 1
        return cls(comps)

    # -- derived vectors ---------------------------------------------------

    def ticked(self, thread: int) -> "VectorClock":
        """Copy with ``thread``'s own component incremented."""
        comps = list(self.components)
        comps[thread] += 1
        return VectorClock(comps)

    def joined(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (the vector-clock merge operation)."""
        self._check_width(other)
        return VectorClock(
            max(a, b) for a, b in zip(self.components, other.components)
        )

    # -- ordering ----------------------------------------------------------

    def dominates(self, other: "VectorClock") -> bool:
        """True if every component of ``self`` is >= ``other``'s."""
        self._check_width(other)
        return all(
            a >= b for a, b in zip(self.components, other.components)
        )

    def happens_before(self, other: "VectorClock") -> bool:
        """Strict happens-before: dominated by ``other`` and not equal."""
        return other.dominates(self) and self.components != other.components

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True if neither vector dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def component(self, thread: int) -> int:
        return self.components[thread]

    @property
    def width(self) -> int:
        return len(self.components)

    def _check_width(self, other: "VectorClock") -> None:
        if len(self.components) != len(other.components):
            raise ConfigError(
                "vector width mismatch: %d vs %d"
                % (len(self.components), len(other.components))
            )

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, VectorClock)
            and self.components == other.components
        )

    def __hash__(self):
        return hash(self.components)

    def __repr__(self):
        return "VectorClock(%s)" % (list(self.components),)
