"""Classical Lamport clocks (sequence number + tie-breaking thread id).

The paper starts from Lamport clocks (Section 2.4) and then *removes* the
tie-breaking thread id, because a total order is counterproductive for race
detection -- equal scalar clocks are how CORD expresses concurrency.  We keep
a faithful Lamport implementation both as documentation of that starting
point and for tests that demonstrate why the tie-break loses races.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.common.errors import ConfigError


@total_ordering
@dataclass(frozen=True)
class LamportStamp:
    """An immutable Lamport timestamp: ``(sequence, thread_id)``.

    Comparison is lexicographic: sequence numbers first, thread ids break
    ties.  Two stamps from the same thread with the same sequence number are
    equal (program order then defines their relation, per the paper's
    footnote 1).
    """

    sequence: int
    thread_id: int

    def __lt__(self, other: "LamportStamp") -> bool:
        if not isinstance(other, LamportStamp):
            return NotImplemented
        return (self.sequence, self.thread_id) < (
            other.sequence,
            other.thread_id,
        )

    def happens_before(self, other: "LamportStamp") -> bool:
        """Total-order "happens before" induced by the Lamport comparison."""
        return self < other


class LamportClock:
    """Mutable Lamport clock for one thread.

    The classical scheme increments on every event and merges on message
    receipt (here: on observing a conflicting timestamp).
    """

    __slots__ = ("thread_id", "sequence")

    def __init__(self, thread_id: int, initial: int = 1):
        if thread_id < 0:
            raise ConfigError("thread_id must be >= 0, got %d" % thread_id)
        self.thread_id = thread_id
        self.sequence = initial

    def now(self) -> LamportStamp:
        """Current timestamp."""
        return LamportStamp(self.sequence, self.thread_id)

    def tick(self) -> LamportStamp:
        """Advance for a local event and return the new stamp."""
        self.sequence += 1
        return self.now()

    def observe(self, stamp: LamportStamp) -> LamportStamp:
        """Merge an observed timestamp (message receipt rule).

        Sets ``sequence = max(local, observed) + 1``.
        """
        self.sequence = max(self.sequence, stamp.sequence) + 1
        return self.now()

    def __repr__(self):
        return "LamportClock(thread=%d, seq=%d)" % (
            self.thread_id,
            self.sequence,
        )
