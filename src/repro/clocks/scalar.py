"""CORD's scalar logical clock (Section 2.4 and 2.6 of the paper).

A scalar clock is a single integer with *no* tie-breaking thread id, so two
threads can legitimately hold equal clocks -- equality is how the scheme
expresses (potential) concurrency.  The update rules are:

* **Race update** -- when a thread's access finds a conflicting timestamp
  ``ts`` with ``clk <= ts``, a race is found and the clock becomes
  ``ts + 1`` so the new ordering is reflected and redundant ordering is not
  re-recorded.
* **Sync-write increment** -- the clock is incremented by one *after* every
  synchronization write, so pre- and post-synchronization accesses get
  different timestamps (Figure 4).  Reads and data writes do not increment
  the clock (Figure 5 shows why increments there lose races).
* **Sync-read window update** -- reading a synchronization variable whose
  last write timestamp is ``ts`` sets ``clk = max(clk, ts + D)``.  The gap
  of ``D`` is the "window of opportunity" of Section 2.6: data accesses
  whose clock is less than ``ts + D`` ahead of a conflicting timestamp are
  *not* considered synchronized by the race detector, even though the
  order-recorder may treat them as transitively ordered.
* **Migration update** -- a thread's clock grows by ``D`` whenever it starts
  running on a (different) processor, so stale self-timestamps on the old
  processor cannot be mistaken for another thread's conflicting accesses
  (Section 2.7.4).
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class ScalarClock:
    """Mutable scalar clock for one thread.

    Args:
        d: the sync-read window parameter ``D`` (>= 1).  ``D = 1`` gives the
           naive scalar scheme evaluated as ``D1`` in Figures 16/17.
        initial: starting clock value (the paper starts threads at 1).
    """

    __slots__ = ("d", "value")

    def __init__(self, d: int = 1, initial: int = 1):
        if d < 1:
            raise ConfigError("window D must be >= 1, got %d" % d)
        if initial < 0:
            raise ConfigError("initial clock must be >= 0, got %d" % initial)
        self.d = d
        self.value = initial

    # -- ordering queries ---------------------------------------------------

    def ordered_after(self, timestamp: int) -> bool:
        """True if this clock is already ordered after ``timestamp``.

        Used by the order-recorder: the conflict outcome is redundant (no
        log-relevant race) when ``clk > ts``.
        """
        return self.value > timestamp

    def synchronized_after(self, timestamp: int) -> bool:
        """True if this clock is *synchronized* after ``timestamp``.

        Used by the data race detector with the window rule of Section 2.6:
        the two accesses count as synchronized only when
        ``clk >= ts + D``.  With ``D = 1`` this degenerates to
        :meth:`ordered_after`.
        """
        return self.value >= timestamp + self.d

    # -- update rules ---------------------------------------------------------

    def update_for_race(self, timestamp: int) -> bool:
        """Apply the race outcome ``ts -> this access``; return True if the
        clock changed (i.e. the ordering was not already implied).

        The clock becomes ``ts + 1`` when ``clk <= ts``; otherwise the
        ordering was transitive and nothing happens.
        """
        if self.value <= timestamp:
            self.value = timestamp + 1
            return True
        return False

    def update_for_sync_read(self, write_timestamp: int) -> bool:
        """Apply the sync-read window update ``clk = max(clk, ts + D)``.

        Returns True if the clock changed.
        """
        target = write_timestamp + self.d
        if self.value < target:
            self.value = target
            return True
        return False

    def increment_after_sync_write(self) -> None:
        """Advance the clock by one following a synchronization write."""
        self.value += 1

    def increment_for_migration(self) -> None:
        """Advance the clock by ``D`` when the thread migrates processors.

        This "synchronizes" new execution with the thread's own stale
        timestamps left in the previous processor's cache, eliminating
        false self-races (Section 2.7.4).
        """
        self.value += self.d

    def increment_for_count_overflow(self) -> None:
        """Advance the clock by one when the log instruction count would
        overflow (Section 2.7.1)."""
        self.value += 1

    def __repr__(self):
        return "ScalarClock(value=%d, d=%d)" % (self.value, self.d)
