"""Deliberately broken detector variants: the fuzzer's self-test seeds.

A differential fuzzer that never fires is indistinguishable from one
that cannot fire.  These variants plant known violations of the
precision hierarchy so the hunt's find-and-shrink loop can be exercised
end to end (the ISSUE acceptance test shrinks one to a witness of a
dozen ops or fewer):

* ``hb-oblivious`` ignores happens-before entirely: it flags *every*
  data access to a word that more than one thread touches.  Real
  detectors flag only the later access of an unordered conflicting
  pair, so on nearly any program with a shared word this flags extra
  accesses -- a guaranteed ``subset`` violation (and a ``soundness``
  violation on race-free runs).
* ``sync-flagger`` mistakes synchronization traffic for data traffic:
  it flags cross-thread *sync-word* accesses, which no real detector
  reports.  It stays silent on purely data-racy programs, exercising
  the hunt's ability to keep searching past clean programs.

Both are plain :class:`~repro.detectors.base.Detector` subclasses fed
through the oracle's ``extra_scalar_specs`` hook, so a violation
surfaces exactly like a genuine regression would.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.common.errors import ConfigError
from repro.detectors.base import DataRace, Detector
from repro.detectors.registry import DetectorSpec
from repro.trace.events import MemoryEvent


class HbObliviousDetector(Detector):
    """Flags every data access to any multi-thread word (no HB test)."""

    name = "broken-hb-oblivious"

    def __init__(self, n_threads: int):
        super().__init__()
        self.outcome.detector_name = self.name
        self._touchers: Dict[int, Set[int]] = {}
        self._events = []

    def process(self, event: MemoryEvent) -> None:
        if event.is_sync:
            return
        self._touchers.setdefault(event.address, set()).add(
            event.thread
        )
        self._events.append(event)

    def finish(self, trace):
        for event in self._events:
            if len(self._touchers[event.address]) > 1:
                self.outcome.record_race(DataRace(
                    access=(event.thread, event.icount),
                    address=event.address,
                    detail="hb-oblivious shared touch",
                ))
        return self.outcome


class SyncFlaggerDetector(Detector):
    """Flags cross-thread sync-word accesses (never a real race)."""

    name = "broken-sync-flagger"

    def __init__(self, n_threads: int):
        super().__init__()
        self.outcome.detector_name = self.name
        self._last_writer: Dict[int, int] = {}

    def process(self, event: MemoryEvent) -> None:
        if not event.is_sync:
            return
        previous = self._last_writer.get(event.address)
        if previous is not None and previous != event.thread:
            self.outcome.record_race(DataRace(
                access=(event.thread, event.icount),
                address=event.address,
                other_thread=previous,
                detail="sync handoff misread as race",
            ))
        self._last_writer[event.address] = event.thread


#: Registry of plantable faults, by CLI name.
BROKEN_VARIANTS: Dict[str, DetectorSpec] = {
    "hb-oblivious": DetectorSpec(
        "broken-hb-oblivious", lambda n: HbObliviousDetector(n)
    ),
    "sync-flagger": DetectorSpec(
        "broken-sync-flagger", lambda n: SyncFlaggerDetector(n)
    ),
}


def broken_spec(name: str) -> DetectorSpec:
    try:
        return BROKEN_VARIANTS[name]
    except KeyError:
        raise ConfigError(
            "unknown broken variant %r (have: %s)"
            % (name, ", ".join(sorted(BROKEN_VARIANTS)))
        ) from None
