"""The hunt loop: generate -> check -> shrink -> serialize.

:func:`hunt` is the fuzzer's top-level driver, shared by the CLI
(``python -m repro.fuzz``) and the deep property tests.  It draws
programs from :mod:`repro.fuzz.generate`, runs the full disagreement
oracle on each under a few scheduler seeds, and on any hit shrinks the
program to a minimal witness and (optionally) writes it to disk.

Determinism: the whole hunt is a function of ``seed`` -- program ``i``
is drawn from ``rng.fork("program-%d" % i)`` and checked under
scheduler seeds derived from the same fork, so a failure report can be
reproduced with ``--programs i+1 --seed S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.common.rng import DeterministicRng
from repro.detectors.registry import DetectorSpec
from repro.fuzz.generate import random_program
from repro.fuzz.oracle import Disagreement, check_program
from repro.fuzz.program import FuzzProgram
from repro.fuzz.shrink import shrink
from repro.fuzz.witness import Witness, make_witness, save_witness

#: Scheduler seeds tried per generated program.
SCHEDULES_PER_PROGRAM = 2


@dataclass
class HuntReport:
    """What one hunt did: counts plus every (shrunk) witness."""

    programs: int = 0
    executions: int = 0
    hung: int = 0
    witnesses: List[Witness] = field(default_factory=list)
    paths: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.witnesses


def hunt(
    n_programs: int = 50,
    seed: int = 2006,
    extra_scalar_specs: Sequence[DetectorSpec] = (),
    broken_variant: Optional[str] = None,
    out_dir: Optional[str] = None,
    max_threads: int = 3,
    max_ops: int = 10,
    shrink_evals: int = 400,
    check_tiers: bool = True,
    on_progress: Optional[Callable[[str], None]] = None,
) -> HuntReport:
    """Fuzz ``n_programs`` specs; shrink and serialize any disagreement.

    ``broken_variant`` names a planted fault from
    :mod:`repro.fuzz.broken`; it is resolved and appended to
    ``extra_scalar_specs`` (the ISSUE's self-test path).
    """
    specs = list(extra_scalar_specs)
    if broken_variant is not None:
        from repro.fuzz.broken import broken_spec

        specs.append(broken_spec(broken_variant))

    rng = DeterministicRng(seed, "fuzz-hunt")
    report = HuntReport()
    say = on_progress or (lambda message: None)

    for i in range(n_programs):
        program_rng = rng.fork("program-%d" % i)
        fp = random_program(
            program_rng, max_threads=max_threads, max_ops=max_ops
        )
        report.programs += 1
        for s in range(SCHEDULES_PER_PROGRAM):
            sched_seed = program_rng.randint(0, 2**31 - 1)
            report.executions += 1
            found = check_program(
                fp, sched_seed,
                extra_scalar_specs=specs,
                check_tiers=check_tiers,
            )
            if not found:
                continue
            first = found[0]
            say("program %d seed %d: %s -- shrinking" % (
                i, sched_seed, first,
            ))
            witness = _shrink_to_witness(
                fp, sched_seed, first.invariant, specs,
                check_tiers, shrink_evals, broken_variant,
            )
            report.witnesses.append(witness)
            if out_dir is not None:
                report.paths.append(save_witness(witness, out_dir))
            break  # one witness per program is enough
    return report


def _shrink_to_witness(
    fp: FuzzProgram,
    sched_seed: int,
    invariant: str,
    specs: Sequence[DetectorSpec],
    check_tiers: bool,
    shrink_evals: int,
    broken_variant: Optional[str],
) -> Witness:
    def oracle(candidate: FuzzProgram):
        return check_program(
            candidate, sched_seed,
            extra_scalar_specs=specs,
            check_tiers=check_tiers,
        )

    result = shrink(fp, invariant, oracle, max_evals=shrink_evals)
    final = next(
        (d for d in result.disagreements if d.invariant == invariant),
        Disagreement(invariant, "?", ""),
    )
    return make_witness(
        result.program, sched_seed, final,
        broken_variant=broken_variant,
    )
