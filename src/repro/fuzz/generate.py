"""Random fuzz-program generation.

All randomness flows through :class:`repro.common.rng.DeterministicRng`,
so a hunt is reproducible from ``(generator seed, program index)`` alone
-- the same contract the workload shapes follow.  The op mix is tilted
toward data accesses (they are what detectors disagree about) with
enough synchronization sprinkled in to build real happens-before edges,
and a *hot-word bias* makes cross-thread conflicts likely even in
8-op programs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.rng import DeterministicRng
from repro.fuzz.program import FuzzOp, FuzzProgram

#: (kind, weight) -- data-heavy, sync-seasoned.
_OP_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("read", 22),
    ("write", 22),
    ("update", 10),
    ("lock", 12),
    ("unlock", 10),
    ("set", 8),
    ("wait", 6),
    ("barrier", 4),
    ("compute", 6),
)

_KINDS = [kind for kind, weight in _OP_WEIGHTS for _ in range(weight)]


def random_program(
    rng: DeterministicRng,
    max_threads: int = 3,
    max_ops: int = 10,
    n_words: int = 6,
    n_mutexes: int = 3,
    n_flags: int = 3,
) -> FuzzProgram:
    """Draw one spec: 2..max_threads threads, 1..max_ops ops each."""
    n_threads = rng.randint(2, max(2, max_threads))
    hot_word = rng.randrange(n_words)
    threads: List[Tuple[FuzzOp, ...]] = []
    for t in range(n_threads):
        body = rng.fork("t%d" % t)
        n_ops = body.randint(1, max_ops)
        ops: List[FuzzOp] = []
        for _ in range(n_ops):
            kind = body.choice(_KINDS)
            if kind in ("read", "write", "update"):
                # Half of all data accesses hit one hot word so that
                # even tiny programs produce cross-thread conflicts.
                arg = (
                    hot_word
                    if body.random() < 0.5
                    else body.randrange(n_words)
                )
            elif kind == "lock":
                arg = body.randrange(n_mutexes)
            elif kind in ("set", "wait"):
                arg = body.randrange(n_flags)
            elif kind == "compute":
                arg = body.randrange(5)
            else:  # unlock / barrier ignore the arg
                arg = 0
            ops.append((kind, arg))
        threads.append(tuple(ops))
    return FuzzProgram(
        threads=tuple(threads),
        n_words=n_words,
        n_mutexes=n_mutexes,
        n_flags=n_flags,
    )
