"""The disagreement oracle: run every detector family, compare verdicts.

One call to :func:`check_program` executes a fuzz spec under a fixed
scheduler seed and checks every cross-detector invariant the repo's
property suites pin individually:

* **subset** -- scalar CORD (D=1 and D=16, matched infinite buffering)
  flags a subset of the vector detector's accesses;
* **vector-vs-ideal** -- the limited-vector detector with an infinite
  cache flags a subset of the ideal oracle's accesses;
* **epoch-vs-ideal** -- same problem verdict and same racy word set;
* **soundness** -- when the ideal oracle is silent, everyone is silent;
* **tiers** -- the degradation ladder's fused and kernel tiers produce
  byte-identical reports to the scalar reference path (via
  :func:`repro.resilience.guard.compute_outcomes` fingerprints);
* **replay** -- re-executing from CORD's order log is conflict-
  equivalent to the recording (skipped when the run hung: the engine
  returns a truncated trace and replay of a truncation legitimately
  diverges).

``extra_scalar_specs`` lets callers add detector variants that must obey
the subset invariant -- the deliberately broken detectors in
:mod:`repro.fuzz.broken` enter through this hook, and any spec that
breaks the hierarchy surfaces as an ordinary disagreement.

Every disagreement is returned, never raised: the fuzzer's job is to
collect and shrink them, not to abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cachesim import CacheGeometry
from repro.cord import CordConfig, CordDetector, replay_trace, verify_replay
from repro.cord.replay import ReplayDivergenceError
from repro.detectors import IdealDetector, LimitedVectorDetector
from repro.detectors.epoch import EpochDetector
from repro.detectors.registry import DetectorSpec
from repro.engine import run_program
from repro.fuzz.program import FuzzProgram, build_program
from repro.resilience.guard import GuardLog, _fingerprint, compute_outcomes

#: Line size shared by every matched-buffering comparison.
LINE = 64

#: Scalar windows exercised per program (tightest + paper default).
D_VALUES = (1, 16)


@dataclass(frozen=True)
class Disagreement:
    """One observed cross-detector contradiction."""

    invariant: str   # "subset" | "vector-vs-ideal" | "epoch-words" | ...
    detector: str    # which configuration violated it
    detail: str      # human-readable evidence (first few access ids)

    def __str__(self):
        return "%s[%s]: %s" % (self.invariant, self.detector, self.detail)


def _scalar_spec(d: int) -> DetectorSpec:
    return DetectorSpec(
        "CORD-D%d" % d,
        lambda n, d=d: CordDetector(
            CordConfig(d=d, cache_size=None, line_size=LINE), n
        ),
    )


def _sample(accesses, limit: int = 4) -> str:
    return repr(sorted(accesses)[:limit])


def check_program(
    fp: FuzzProgram,
    seed: int,
    extra_scalar_specs: Sequence[DetectorSpec] = (),
    check_tiers: bool = True,
) -> List[Disagreement]:
    """Run ``fp`` once and return every detector disagreement."""
    program = build_program(fp)
    trace = run_program(program, seed=seed, on_deadlock="hang")
    n = program.n_threads
    found: List[Disagreement] = []

    ideal = IdealDetector(n).run(trace)
    vector = LimitedVectorDetector(n, CacheGeometry.infinite(LINE)).run(
        trace
    )
    epoch = EpochDetector(n).run(trace)

    extra = vector.flagged - ideal.flagged
    if extra:
        found.append(Disagreement(
            "vector-vs-ideal", "InfCache",
            "vector flags outside ideal: %s" % _sample(extra),
        ))

    if ideal.problem_detected != epoch.problem_detected:
        found.append(Disagreement(
            "epoch-verdict", "Epoch",
            "ideal=%s epoch=%s"
            % (ideal.problem_detected, epoch.problem_detected),
        ))
    ideal_words = {race.address for race in ideal.races}
    epoch_words = {race.address for race in epoch.races}
    if ideal_words != epoch_words:
        found.append(Disagreement(
            "epoch-words", "Epoch",
            "ideal-only=%s epoch-only=%s" % (
                _sample(ideal_words - epoch_words),
                _sample(epoch_words - ideal_words),
            ),
        ))

    scalar_specs = [_scalar_spec(d) for d in D_VALUES]
    scalar_specs.extend(extra_scalar_specs)
    scalar_outcomes: Dict[str, object] = {}
    for spec in scalar_specs:
        outcome = spec.build(n).run(trace)
        scalar_outcomes[spec.name] = outcome
        extra = outcome.flagged - vector.flagged
        if extra:
            found.append(Disagreement(
                "subset", spec.name,
                "scalar flags outside vector: %s" % _sample(extra),
            ))
        if not ideal.problem_detected and outcome.flagged:
            found.append(Disagreement(
                "soundness", spec.name,
                "flags on a race-free run: %s"
                % _sample(outcome.flagged),
            ))

    if check_tiers:
        found.extend(_check_tiers(fp, trace, n))

    if not trace.hung:
        found.extend(_check_replay(program, trace, n))

    return found


def _check_tiers(fp: FuzzProgram, trace, n: int) -> List[Disagreement]:
    """Fused and kernel tiers must reproduce the scalar reference."""
    found: List[Disagreement] = []
    specs = [_scalar_spec(d) for d in D_VALUES]
    specs.append(DetectorSpec("Ideal", lambda k: IdealDetector(k)))
    packed = trace.packed
    log = GuardLog()
    reference: Optional[Dict[str, tuple]] = None
    for tier, kwargs in (
        ("scalar", dict(allow_fused=False, allow_packed=False)),
        ("kernel", dict(allow_fused=False)),
        ("fused", dict()),
    ):
        outcomes = compute_outcomes(
            specs, n, packed, guard_log=log, **kwargs
        )
        prints = {
            name: _fingerprint(out) for name, out in outcomes.items()
        }
        if reference is None:
            reference = prints
            continue
        for name, print_ in prints.items():
            if print_ != reference[name]:
                found.append(Disagreement(
                    "tier-equivalence", name,
                    "%s tier differs from scalar reference" % tier,
                ))
    if log.count():
        found.append(Disagreement(
            "tier-degradation", "*",
            "ladder degraded %d time(s) on a healthy run"
            % log.count(),
        ))
    return found


def _check_replay(program, trace, n: int) -> List[Disagreement]:
    """Replay from the order log must be conflict-equivalent."""
    recorder = CordDetector(
        CordConfig(d=16, cache_size=None, line_size=LINE), n
    )
    outcome = recorder.run(trace)
    try:
        replayed = replay_trace(program, outcome.log)
    except ReplayDivergenceError as exc:
        return [Disagreement("replay", "CORD-D16", "diverged: %s" % exc)]
    verdict = verify_replay(trace, replayed)
    if not verdict.equivalent:
        return [Disagreement("replay", "CORD-D16", verdict.detail)]
    return []
