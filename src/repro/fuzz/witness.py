"""Witness serialization: shrunk disagreement programs as JSON fixtures.

A witness file is self-contained: the spec (replayable via
:meth:`FuzzProgram.from_json`), the scheduler seed, the violated
invariant with its evidence, and *behavior digests* of what the real
detector families report on the witness execution.  The digests let the
fixture loader (:mod:`tests.integration.test_fuzz_fixtures`) pin the
healthy detectors' behavior on each witness without re-encoding whole
traces -- the same philosophy as the golden replay fixtures.

Witnesses found against deliberately broken variants record the variant
name; the checked-in corpus must always pass the *real* detectors, so
the loader asserts the digests and the absence of genuine disagreements.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cachesim import CacheGeometry
from repro.cord import CordConfig, CordDetector
from repro.detectors import IdealDetector, LimitedVectorDetector
from repro.detectors.epoch import EpochDetector
from repro.engine import run_program
from repro.fuzz.oracle import D_VALUES, LINE, Disagreement
from repro.fuzz.program import FuzzProgram, build_program

#: Witness file format version.
WITNESS_FORMAT = 1


def _digest(obj) -> str:
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def behavior_digests(fp: FuzzProgram, seed: int) -> Dict[str, str]:
    """Per-family digests of what the healthy detectors report."""
    program = build_program(fp)
    trace = run_program(program, seed=seed, on_deadlock="hang")
    n = program.n_threads
    digests = {
        "trace": _digest({
            "events": len(trace.events),
            "hung": trace.hung,
            "final_icounts": list(trace.final_icounts),
        }),
        "Ideal": _outcome_digest(IdealDetector(n).run(trace)),
        "Vector": _outcome_digest(
            LimitedVectorDetector(
                n, CacheGeometry.infinite(LINE)
            ).run(trace)
        ),
        "Epoch": _outcome_digest(EpochDetector(n).run(trace)),
    }
    for d in D_VALUES:
        outcome = CordDetector(
            CordConfig(d=d, cache_size=None, line_size=LINE), n
        ).run(trace)
        digests["CORD-D%d" % d] = _outcome_digest(outcome)
    return digests


def _outcome_digest(outcome) -> str:
    return _digest({
        "flagged": sorted(list(a) for a in outcome.flagged),
        "words": sorted({race.address for race in outcome.races}),
    })


@dataclass
class Witness:
    """One shrunk disagreement, ready to serialize."""

    program: FuzzProgram
    seed: int
    invariant: str
    detail: str
    broken_variant: Optional[str] = None
    digests: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        key = _digest({
            "program": self.program.to_json(),
            "seed": self.seed,
            "invariant": self.invariant,
        })[:10]
        return "%s-%s" % (self.invariant, key)

    def to_json(self) -> Dict:
        return {
            "format": WITNESS_FORMAT,
            "invariant": self.invariant,
            "detail": self.detail,
            "broken_variant": self.broken_variant,
            "seed": self.seed,
            "op_count": self.program.op_count,
            "program": self.program.to_json(),
            "digests": self.digests,
        }

    @classmethod
    def from_json(cls, obj: Dict) -> "Witness":
        if obj.get("format") != WITNESS_FORMAT:
            raise ValueError(
                "unsupported witness format %r" % obj.get("format")
            )
        return cls(
            program=FuzzProgram.from_json(obj["program"]),
            seed=int(obj["seed"]),
            invariant=obj["invariant"],
            detail=obj.get("detail", ""),
            broken_variant=obj.get("broken_variant"),
            digests=dict(obj.get("digests", {})),
        )


def make_witness(
    fp: FuzzProgram,
    seed: int,
    disagreement: Disagreement,
    broken_variant: Optional[str] = None,
) -> Witness:
    return Witness(
        program=fp,
        seed=seed,
        invariant=disagreement.invariant,
        detail=disagreement.detail,
        broken_variant=broken_variant,
        digests=behavior_digests(fp, seed),
    )


def save_witness(witness: Witness, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, witness.name + ".json")
    with open(path, "w") as handle:
        json.dump(witness.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_witness(path: str) -> Witness:
    with open(path) as handle:
        return Witness.from_json(json.load(handle))


def load_corpus(directory: str) -> List[Witness]:
    """Every ``*.json`` witness under ``directory``, sorted by name."""
    if not os.path.isdir(directory):
        return []
    witnesses = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".json"):
            witnesses.append(
                load_witness(os.path.join(directory, entry))
            )
    return witnesses
