"""Differential fuzzing of the detector families.

This package closes the loop the property suites open: instead of
hand-picked program shapes, it *searches* for sync-structured programs
on which the detector families disagree -- scalar CORD escaping the
vector set, epoch diverging from ideal, an accelerated tier differing
from the scalar reference, a replay that will not re-execute.  Any hit
is shrunk to a minimal witness and serialized under
``tests/fixtures/golden/fuzz/`` where the fixture loader keeps it
passing forever.

Layout:

* :mod:`repro.fuzz.program` -- serializable specs + normalized lowering;
* :mod:`repro.fuzz.generate` -- deterministic random program drawing;
* :mod:`repro.fuzz.strategies` -- hypothesis mirrors of the generator;
* :mod:`repro.fuzz.oracle` -- the cross-detector disagreement oracle;
* :mod:`repro.fuzz.shrink` -- greedy ddmin over specs;
* :mod:`repro.fuzz.witness` -- JSON witnesses with behavior digests;
* :mod:`repro.fuzz.broken` -- planted faults for self-testing the hunt;
* :mod:`repro.fuzz.hunt` -- the generate/check/shrink/serialize driver;
* ``python -m repro.fuzz`` -- the CLI entry point.
"""

from repro.fuzz.generate import random_program
from repro.fuzz.hunt import HuntReport, hunt
from repro.fuzz.oracle import Disagreement, check_program
from repro.fuzz.program import FuzzProgram, build_program
from repro.fuzz.shrink import ShrinkResult, shrink
from repro.fuzz.witness import (
    Witness,
    load_corpus,
    load_witness,
    make_witness,
    save_witness,
)

__all__ = [
    "Disagreement",
    "FuzzProgram",
    "HuntReport",
    "ShrinkResult",
    "Witness",
    "build_program",
    "check_program",
    "hunt",
    "load_corpus",
    "load_witness",
    "make_witness",
    "random_program",
    "save_witness",
    "shrink",
]
