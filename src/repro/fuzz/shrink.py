"""Greedy delta-debugging shrinker for disagreement witnesses.

Given a spec on which the oracle reports a disagreement, reduce it while
the *same invariant* keeps failing (matching on the invariant name, not
the exact detail: the evidence string legitimately changes as the
program shrinks).  Normalization in :func:`repro.fuzz.program.
build_program` guarantees every candidate spec is valid, so the shrinker
is plain spec surgery:

1. drop whole threads (programs need >= 1 thread to build; the oracle
   invariants are trivially true single-threaded, which is fine -- such
   a candidate simply stops failing and is rejected);
2. ddmin over each thread's op list with halving chunk sizes;
3. canonicalize surviving ops (rewrite args toward 0, demote ``update``
   to ``write``) so witnesses read minimally.

Each candidate costs one full oracle run, so the total is capped by
``max_evals``; the shrink is greedy (first improvement wins) and
restarts a pass after any success until a fixpoint or the budget ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.fuzz.oracle import Disagreement
from repro.fuzz.program import FuzzProgram

#: An oracle closure: spec -> disagreements (seed and any broken
#: variants are baked in by the caller).
Oracle = Callable[[FuzzProgram], Sequence[Disagreement]]


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal spec plus bookkeeping."""

    program: FuzzProgram
    invariant: str
    disagreements: List[Disagreement] = field(default_factory=list)
    evals: int = 0
    exhausted: bool = False  # True when max_evals stopped the search


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _still_fails(
    candidate: FuzzProgram,
    invariant: str,
    oracle: Oracle,
    budget: _Budget,
) -> Optional[List[Disagreement]]:
    if not budget.spend():
        return None
    try:
        found = list(oracle(candidate))
    except Exception:  # noqa: BLE001 - a crashing candidate is no witness
        return None
    if any(d.invariant == invariant for d in found):
        return found
    return None


def shrink(
    fp: FuzzProgram,
    invariant: str,
    oracle: Oracle,
    max_evals: int = 400,
) -> ShrinkResult:
    """Minimize ``fp`` while ``invariant`` still fails under ``oracle``."""
    budget = _Budget(max_evals)
    current = fp
    disagreements = list(oracle(current))
    best = ShrinkResult(current, invariant, disagreements, evals=1)

    improved = True
    while improved:
        improved = False

        # Pass 1: drop whole threads.
        t = 0
        while current.n_threads > 1 and t < current.n_threads:
            candidate = current.without_thread(t)
            found = _still_fails(candidate, invariant, oracle, budget)
            if found is not None:
                current, improved = candidate, True
            else:
                t += 1

        # Pass 2: ddmin each thread's ops with halving chunks.
        for t in range(current.n_threads):
            chunk = max(1, len(current.threads[t]) // 2)
            while chunk >= 1:
                start = 0
                while start < len(current.threads[t]):
                    stop = min(
                        start + chunk, len(current.threads[t])
                    )
                    candidate = current.without_ops(t, start, stop)
                    found = _still_fails(
                        candidate, invariant, oracle, budget
                    )
                    if found is not None:
                        current, improved = candidate, True
                    else:
                        start = stop
                chunk //= 2

        # Pass 3: demote updates to plain writes where possible.
        for t in range(current.n_threads):
            for i, (kind, arg) in enumerate(current.threads[t]):
                if kind != "update":
                    continue
                candidate = current.with_op(t, i, ("write", arg))
                found = _still_fails(
                    candidate, invariant, oracle, budget
                )
                if found is not None:
                    current, improved = candidate, True

        if budget.used >= budget.limit:
            break

    # Final cosmetic pass: renumber word/mutex/flag args to first-use
    # order across all threads at once (per-op rewrites would split the
    # very conflict pairs the witness exists to exhibit).  Applied only
    # if the renamed spec still fails.
    renamed = _renumber_args(current)
    if renamed != current:
        found = _still_fails(renamed, invariant, oracle, budget)
        if found is not None:
            current = renamed

    final = _still_fails(current, invariant, oracle, _Budget(1))
    best.program = current
    best.disagreements = final if final is not None else disagreements
    best.evals = budget.used + 1
    best.exhausted = budget.used >= budget.limit
    return best


_ARG_POOLS = {
    "read": "words", "write": "words", "update": "words",
    "lock": "mutexes", "set": "flags", "wait": "flags",
}


def _renumber_args(fp: FuzzProgram) -> FuzzProgram:
    """Densely renumber pool args in first-use order (global rename)."""
    mapping = {"words": {}, "mutexes": {}, "flags": {}}
    sizes = {
        "words": fp.n_words,
        "mutexes": fp.n_mutexes,
        "flags": fp.n_flags,
    }
    threads = []
    for ops in fp.threads:
        renamed = []
        for kind, arg in ops:
            pool = _ARG_POOLS.get(kind)
            if pool is None:
                renamed.append((kind, arg))
                continue
            table = mapping[pool]
            key = arg % sizes[pool]
            if key not in table:
                table[key] = len(table)
            renamed.append((kind, table[key]))
        threads.append(tuple(renamed))
    return FuzzProgram(
        tuple(threads), fp.n_words, fp.n_mutexes, fp.n_flags
    )
