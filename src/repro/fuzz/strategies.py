"""Hypothesis strategies over fuzz programs.

Guarded import: hypothesis is a test-only dependency, and this module
lives in the package so the property suite, the CLI, and future tooling
share one source of truth for the search space.  Importing the module
without hypothesis installed works; calling :func:`fuzz_programs` then
raises with an actionable message.

The strategy mirrors :func:`repro.fuzz.generate.random_program` (same
pools, same vocabulary) but hands shrinking to hypothesis -- useful for
the bounded property tests, while the standalone hunt keeps its own
ddmin for CLI runs without a hypothesis dependency.
"""

from __future__ import annotations

from repro.fuzz.program import FuzzProgram

try:
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised in bare envs only
    st = None
    HAVE_HYPOTHESIS = False

N_WORDS = 6
N_MUTEXES = 3
N_FLAGS = 3


def _ops():
    return st.one_of(
        st.tuples(
            st.sampled_from(["read", "write", "update"]),
            st.integers(0, N_WORDS - 1),
        ),
        st.tuples(st.just("lock"), st.integers(0, N_MUTEXES - 1)),
        st.tuples(st.just("unlock"), st.just(0)),
        st.tuples(
            st.sampled_from(["set", "wait"]),
            st.integers(0, N_FLAGS - 1),
        ),
        st.tuples(st.just("barrier"), st.just(0)),
        st.tuples(st.just("compute"), st.integers(0, 4)),
    )


def fuzz_programs(max_threads: int = 3, max_ops: int = 8):
    """Strategy drawing :class:`FuzzProgram` specs."""
    if not HAVE_HYPOTHESIS:
        raise RuntimeError(
            "hypothesis is not installed; repro.fuzz.strategies needs "
            "it -- use repro.fuzz.generate.random_program instead"
        )
    thread = st.lists(_ops(), min_size=1, max_size=max_ops).map(tuple)
    return st.builds(
        FuzzProgram,
        threads=st.lists(
            thread, min_size=2, max_size=max_threads
        ).map(tuple),
        n_words=st.just(N_WORDS),
        n_mutexes=st.just(N_MUTEXES),
        n_flags=st.just(N_FLAGS),
    )


def schedule_seeds():
    if not HAVE_HYPOTHESIS:
        raise RuntimeError("hypothesis is not installed")
    return st.integers(min_value=0, max_value=2**31 - 1)
