"""CLI: ``python -m repro.fuzz`` -- run a differential fuzzing hunt.

Exit status 1 when any witness was found (CI treats a hit as a failing
gate and uploads the serialized witnesses as artifacts), 0 on a clean
hunt.  ``--broken`` plants a known-bad detector variant to self-test
the find-and-shrink loop; such runs are *expected* to find witnesses,
so ``--expect-witness`` inverts the exit-status convention.
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.broken import BROKEN_VARIANTS
from repro.fuzz.hunt import hunt


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the detector families",
    )
    parser.add_argument(
        "--programs", type=int, default=50,
        help="number of programs to generate (default: 50)",
    )
    parser.add_argument(
        "--seed", type=int, default=2006,
        help="hunt seed; the whole run is a function of it",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="serialize shrunk witnesses into DIR",
    )
    parser.add_argument(
        "--broken", default=None, choices=sorted(BROKEN_VARIANTS),
        help="plant a known-bad detector variant (self-test mode)",
    )
    parser.add_argument(
        "--expect-witness", action="store_true",
        help="exit 0 iff a witness WAS found (for --broken self-tests)",
    )
    parser.add_argument(
        "--max-threads", type=int, default=3,
    )
    parser.add_argument(
        "--max-ops", type=int, default=10,
    )
    parser.add_argument(
        "--shrink-evals", type=int, default=400,
        help="oracle-evaluation budget per shrink (default: 400)",
    )
    parser.add_argument(
        "--no-tiers", action="store_true",
        help="skip the fused/kernel tier cross-check (faster)",
    )
    args = parser.parse_args(argv)

    report = hunt(
        n_programs=args.programs,
        seed=args.seed,
        broken_variant=args.broken,
        out_dir=args.out,
        max_threads=args.max_threads,
        max_ops=args.max_ops,
        shrink_evals=args.shrink_evals,
        check_tiers=not args.no_tiers,
        on_progress=lambda message: print("fuzz: " + message),
    )

    print(
        "fuzz: %d programs, %d executions, %d witness(es)"
        % (report.programs, report.executions, len(report.witnesses))
    )
    for witness, path in zip(
        report.witnesses,
        report.paths or [None] * len(report.witnesses),
    ):
        where = " -> %s" % path if path else ""
        print(
            "fuzz: witness %s (%d ops, seed %d)%s"
            % (witness.name, witness.program.op_count,
               witness.seed, where)
        )

    found = bool(report.witnesses)
    if args.expect_witness:
        if not found:
            print("fuzz: ERROR: expected a witness, found none")
        return 0 if found else 1
    return 1 if found else 0


if __name__ == "__main__":
    sys.exit(main())
