"""Serializable sync-structured fuzz programs.

A :class:`FuzzProgram` is a compact, JSON-serializable description of a
small multithreaded program: per-thread flat op lists over fixed pools
of shared words, mutexes, flags, and one barrier.  :func:`build_program`
lowers a spec to an executable :class:`~repro.program.builder.Program`
through a *normalization* layer that makes **every** spec valid:

* ``lock``: acquired only if not already held and of higher index than
  every held mutex (ascending lock order -- no lock-order deadlocks);
  otherwise skipped.
* ``unlock``: releases the most recently acquired mutex (skipped when
  none is held).
* ``wait``: releases all held mutexes first (no blocking inside a
  critical section), then waits only if some *other* thread sets the
  flag; otherwise skipped.
* ``barrier``: releases held mutexes, then participates in episode
  ``k`` only for ``k < min over threads of barrier-op counts`` (every
  executed episode has full attendance); extra barrier ops are skipped.
* remaining held mutexes are released when the thread body ends.

Normalization is a pure function of the spec, so *deleting any op (or
thread) yields another valid spec* -- the property the shrinker
(:mod:`repro.fuzz.shrink`) relies on.  Deadlock is still possible
through wait/barrier cycles; the engine's watchdog then truncates the
trace (``hung=True``), which the disagreement oracle tolerates (replay
invariants are only asserted on completed runs).

Data accesses are deliberately unconstrained: reads, writes, and
read-modify-writes hit the shared pool with or without protection, so
generated executions range from race-free handoffs to heavily racy
free-for-alls -- exactly the spread the detector-family invariants must
survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.program.ops import ComputeOp, ReadOp, WriteOp
from repro.sync.library import (
    acquire,
    barrier_wait,
    flag_set,
    flag_wait,
    release,
)
from repro.sync.objects import Barrier, Flag, Mutex

#: One fuzz op: ``(kind, arg)``.
FuzzOp = Tuple[str, int]

#: The op vocabulary (kind -> does the arg index words/mutexes/flags?).
OP_KINDS = (
    "read",      # read pool word arg
    "write",     # write pool word arg
    "update",    # read-modify-write pool word arg
    "lock",      # acquire mutex arg (normalized)
    "unlock",    # release newest held mutex
    "set",       # raise flag arg
    "wait",      # wait for flag arg (normalized)
    "barrier",   # barrier episode (normalized)
    "compute",   # arg instruction slots of local compute
)

#: Spec format version for serialized witnesses.
FORMAT = 1


@dataclass(frozen=True)
class FuzzProgram:
    """A generated program: per-thread op tuples over fixed pools."""

    threads: Tuple[Tuple[FuzzOp, ...], ...]
    n_words: int = 6
    n_mutexes: int = 3
    n_flags: int = 3

    def __post_init__(self):
        if not self.threads:
            raise ConfigError("a fuzz program needs >= 1 thread")
        if min(self.n_words, self.n_mutexes, self.n_flags) < 1:
            raise ConfigError("fuzz pools must be >= 1 entry")
        for ops in self.threads:
            for op in ops:
                if op[0] not in OP_KINDS:
                    raise ConfigError("unknown fuzz op kind %r" % (op[0],))

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def op_count(self) -> int:
        return sum(len(ops) for ops in self.threads)

    # -- serialization ------------------------------------------------------

    def to_json(self) -> Dict:
        return {
            "format": FORMAT,
            "n_words": self.n_words,
            "n_mutexes": self.n_mutexes,
            "n_flags": self.n_flags,
            "threads": [
                [[kind, arg] for kind, arg in ops] for ops in self.threads
            ],
        }

    @classmethod
    def from_json(cls, obj: Dict) -> "FuzzProgram":
        if obj.get("format") != FORMAT:
            raise ConfigError(
                "unsupported fuzz program format %r" % obj.get("format")
            )
        return cls(
            threads=tuple(
                tuple((str(kind), int(arg)) for kind, arg in ops)
                for ops in obj["threads"]
            ),
            n_words=int(obj["n_words"]),
            n_mutexes=int(obj["n_mutexes"]),
            n_flags=int(obj["n_flags"]),
        )

    # -- spec surgery (used by the shrinker) --------------------------------

    def without_thread(self, index: int) -> "FuzzProgram":
        threads = tuple(
            ops for t, ops in enumerate(self.threads) if t != index
        )
        return FuzzProgram(
            threads, self.n_words, self.n_mutexes, self.n_flags
        )

    def without_ops(self, thread: int, start: int, stop: int) -> (
            "FuzzProgram"):
        ops = self.threads[thread]
        trimmed = ops[:start] + ops[stop:]
        threads = tuple(
            trimmed if t == thread else existing
            for t, existing in enumerate(self.threads)
        )
        return FuzzProgram(
            threads, self.n_words, self.n_mutexes, self.n_flags
        )

    def with_op(self, thread: int, index: int, op: FuzzOp) -> (
            "FuzzProgram"):
        ops = self.threads[thread]
        replaced = ops[:index] + (op,) + ops[index + 1:]
        threads = tuple(
            replaced if t == thread else existing
            for t, existing in enumerate(self.threads)
        )
        return FuzzProgram(
            threads, self.n_words, self.n_mutexes, self.n_flags
        )


def _flag_setters(fp: FuzzProgram) -> Dict[int, set]:
    """flag index -> set of thread ids that raise it."""
    setters: Dict[int, set] = {}
    for t, ops in enumerate(fp.threads):
        for kind, arg in ops:
            if kind == "set":
                setters.setdefault(arg % fp.n_flags, set()).add(t)
    return setters


def build_program(fp: FuzzProgram) -> Program:
    """Lower a spec to an executable, normalized :class:`Program`."""
    space = AddressSpace()
    words = space.alloc_array("pool", fp.n_words)
    mutexes = [
        Mutex.allocate(space, "m%d" % i) for i in range(fp.n_mutexes)
    ]
    flags = [
        Flag.allocate(space, "f%d" % i) for i in range(fp.n_flags)
    ]
    barrier_rounds = min(
        sum(1 for kind, _arg in ops if kind == "barrier")
        for ops in fp.threads
    )
    barrier = (
        Barrier.allocate(space, fp.n_threads, "b")
        if barrier_rounds else None
    )
    setters = _flag_setters(fp)

    def make_body(ops: Sequence[FuzzOp], tid_of_body: int):
        def body(tid):
            held: List[int] = []  # mutex indices, acquisition order
            barriers_done = 0
            for kind, arg in ops:
                if kind == "read":
                    yield ReadOp(words[arg % fp.n_words])
                elif kind == "write":
                    yield WriteOp(words[arg % fp.n_words], tid + 1)
                elif kind == "update":
                    address = words[arg % fp.n_words]
                    value = yield ReadOp(address)
                    yield WriteOp(address, (value or 0) + 1)
                elif kind == "lock":
                    m = arg % fp.n_mutexes
                    if not held or m > held[-1]:
                        yield from acquire(mutexes[m])
                        held.append(m)
                elif kind == "unlock":
                    if held:
                        yield from release(mutexes[held.pop()])
                elif kind == "set":
                    yield from flag_set(flags[arg % fp.n_flags], 1)
                elif kind == "wait":
                    f = arg % fp.n_flags
                    if setters.get(f, set()) - {tid_of_body}:
                        while held:
                            yield from release(mutexes[held.pop()])
                        yield from flag_wait(flags[f], 1)
                elif kind == "barrier":
                    if barriers_done < barrier_rounds:
                        barriers_done += 1
                        while held:
                            yield from release(mutexes[held.pop()])
                        yield from barrier_wait(barrier)
                elif kind == "compute":
                    yield ComputeOp(1 + arg % 5)
            while held:
                yield from release(mutexes[held.pop()])

        return body

    bodies = [
        make_body(ops, t) for t, ops in enumerate(fp.threads)
    ]
    return Program(bodies, space, name="fuzz")
