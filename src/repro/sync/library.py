"""Generator helpers that lower sync primitives to op sequences.

Thread bodies use these via ``yield from``:

.. code-block:: python

    def body(tid):
        yield from acquire(mutex)
        value = yield ReadOp(counter)
        yield WriteOp(counter, value + 1)
        yield from release(mutex)
        yield from barrier_wait(barrier)

Each helper yields the exact op sequence the engine lowers to labeled
synchronization accesses, so the fault injector (which intercepts
:class:`LockOp` / :class:`UnlockOp` / :class:`FlagWaitOp` at the engine
boundary) sees one injectable dynamic instance per primitive invocation --
including the ones inside :func:`barrier_wait`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.program.ops import (
    FlagSetOp,
    FlagWaitOp,
    LockOp,
    Op,
    ReadOp,
    UnlockOp,
    WriteOp,
)
from repro.sync.objects import Barrier, Flag, Mutex

OpGen = Generator[Op, Optional[int], None]


def acquire(mutex: Mutex) -> OpGen:
    """Acquire ``mutex`` (blocks until free)."""
    yield LockOp(mutex.address)


def release(mutex: Mutex) -> OpGen:
    """Release ``mutex``."""
    yield UnlockOp(mutex.address)


def flag_wait(flag: Flag, at_least: int = 1) -> OpGen:
    """Block until ``flag``'s value reaches ``at_least``."""
    yield FlagWaitOp(flag.address, at_least)


def flag_set(flag: Flag, value: int = 1) -> OpGen:
    """Raise ``flag`` to ``value`` and wake satisfied waiters."""
    yield FlagSetOp(flag.address, value)


def critical_increment(mutex: Mutex, address: int, delta: int = 1) -> OpGen:
    """Lock-protected read-modify-write of one shared data word.

    The canonical critical section: the access pattern whose protection the
    fault injector removes to create lost-update races.
    """
    yield from acquire(mutex)
    value = yield ReadOp(address)
    yield WriteOp(address, (value or 0) + delta)
    yield from release(mutex)


def barrier_wait(barrier: Barrier) -> OpGen:
    """Wait at a centralized episode barrier.

    Implementation (Section 3.4's "combination of mutex and flag
    operations"):

    1. lock the barrier mutex;
    2. increment the arrival counter (data accesses);
    3. last arriver: reset the counter, bump the episode number, unlock,
       then set the release flag to the new episode number;
    4. other arrivers: read the episode number, unlock, then wait for the
       flag to reach ``episode + 1``.

    Every constituent lock/unlock/wait is a separate injectable sync
    instance.  Removing the mutex can lose a counter update (the barrier
    then hangs -- handled by the engine watchdog); removing the flag wait
    releases a thread early.  Both are realistic manifestations.
    """
    yield from acquire(barrier.mutex)
    count = yield ReadOp(barrier.count_address)
    count = (count or 0) + 1
    yield WriteOp(barrier.count_address, count)
    if count >= barrier.n_threads:
        yield WriteOp(barrier.count_address, 0)
        episode = yield ReadOp(barrier.episode_address)
        episode = (episode or 0) + 1
        yield WriteOp(barrier.episode_address, episode)
        yield from release(barrier.mutex)
        yield from flag_set(barrier.flag, episode)
    else:
        episode = yield ReadOp(barrier.episode_address)
        yield from release(barrier.mutex)
        yield from flag_wait(barrier.flag, (episode or 0) + 1)
