"""Handles for synchronization objects.

These are plain descriptors: a mutex or flag is one word in the sync segment
of the address space, and a barrier is a small composite (mutex + flag +
two data words).  All *behavior* lives in the engine (blocking semantics)
and in :mod:`repro.sync.library` (the access sequences each primitive
performs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.address_space import AddressSpace, Segment


@dataclass(frozen=True)
class Mutex:
    """A mutual-exclusion lock occupying one sync word."""

    address: int
    name: str = "mutex"

    @classmethod
    def allocate(cls, space: AddressSpace, name: str = "mutex") -> "Mutex":
        return cls(space.alloc_sync(name), name)


@dataclass(frozen=True)
class Flag:
    """A monotone counter flag (condition-variable style) in one sync word.

    Waiters block until the flag value reaches a threshold; setters only
    ever raise the value.  A one-shot event is "wait for 1 / set to 1"; a
    reusable barrier waits for successive episode numbers.
    """

    address: int
    name: str = "flag"

    @classmethod
    def allocate(cls, space: AddressSpace, name: str = "flag") -> "Flag":
        return cls(space.alloc_sync(name), name)


@dataclass(frozen=True)
class Barrier:
    """A centralized episode-counting barrier.

    Composition (see :func:`repro.sync.library.barrier_wait`):

    * ``mutex`` protects the arrival counter;
    * ``count_address`` (data word) counts arrivals in the current episode;
    * ``episode_address`` (data word) numbers completed episodes;
    * ``flag`` releases waiters when an episode completes.

    The arrival counter and episode number are *ordinary data words*: when
    fault injection removes one of the constituent mutex acquisitions, the
    counter update becomes a genuine data race, which is precisely the kind
    of elusive bug the paper's Section 3.4 injects.
    """

    mutex: Mutex
    flag: Flag
    count_address: int
    episode_address: int
    n_threads: int
    name: str = "barrier"

    @classmethod
    def allocate(
        cls, space: AddressSpace, n_threads: int, name: str = "barrier"
    ) -> "Barrier":
        if n_threads < 1:
            raise ValueError("barrier needs >= 1 thread")
        mutex = Mutex.allocate(space, name + ".mutex")
        flag = Flag.allocate(space, name + ".flag")
        count = space.alloc(name + ".count", 1, Segment.DATA,
                            align_to_line=True)
        episode = space.alloc(name + ".episode", 1, Segment.DATA)
        return cls(mutex, flag, count, episode, n_threads, name)
