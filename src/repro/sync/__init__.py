"""Synchronization primitives built from labeled sync accesses.

The paper's mechanism relies on synchronization libraries that mark their
loads and stores with special instructions (Section 2.7.3).  This package is
that library: mutexes and flags are one sync word each, and barriers are
*composed* from a mutex, a flag, and ordinary data accesses to a counter --
exactly the structure the paper's fault injector exploits ("Barrier
synchronization uses a combination of mutex and flag operations in its
implementation and each dynamic invocation of those mutex and flag
primitives is treated as a separate instance of synchronization").
"""

from repro.sync.objects import Barrier, Flag, Mutex
from repro.sync.library import (
    acquire,
    release,
    barrier_wait,
    critical_increment,
    flag_set,
    flag_wait,
)

__all__ = [
    "Barrier",
    "Flag",
    "Mutex",
    "acquire",
    "barrier_wait",
    "critical_increment",
    "flag_set",
    "flag_wait",
    "release",
]
