"""Command-line interface for the CORD reproduction.

Usage (also available as ``python -m repro.cli``):

.. code-block:: console

    cord-repro list                      # Table 1: the workloads
    cord-repro run raytrace --seed 42    # one execution + CORD report
    cord-repro inject volrend -n 12      # Section 3.4 campaign, one app
    cord-repro figures --quick           # regenerate the paper's figures
    cord-repro replay cholesky           # record + replay verification
    cord-repro sweep --cache DIR         # checkpointed D-sensitivity sweep

A checkpointed ``sweep`` survives its own death: every journal
transition is durable, SIGTERM drains to exit code 71 ("interrupted,
resumable"), and re-running with the same ``--cache`` directory (or an
explicit ``--resume <run-id>``) completes bit-identically.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import (
    ConfigError,
    CordError,
    DegradedPathError,
    InterruptedRunError,
    PipelineError,
    StoreCorruptError,
    WorkerTimeoutError,
)
from repro.cord.config import CordConfig
from repro.cord.detector import CordDetector
from repro.cord.replay import replay_trace, verify_replay
from repro.engine.executor import run_program
from repro.experiments.runner import Suite, SuiteConfig
from repro.experiments.tables import table1
from repro.injection.campaign import (
    CampaignConfig,
    format_campaign_report,
    run_campaign,
)
from repro.trace.stats import compute_stats
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import get_workload, workload_names


def _cmd_list(_args) -> int:
    print(table1().render())
    return 0


def _cmd_run(args) -> int:
    spec = get_workload(args.workload)
    program = spec.build(WorkloadParams(scale=args.scale))
    trace = run_program(program, seed=args.seed)
    stats = compute_stats(trace)
    outcome = CordDetector(
        CordConfig(d=args.window), program.n_threads
    ).run(trace)
    print("workload : %s (%s)" % (spec.name, spec.input_label))
    print("events   : %d (%.1f%% sync), %d shared words" % (
        stats.n_events, 100 * stats.sync_fraction, stats.shared_words))
    print("races    : %d" % outcome.raw_count)
    print("order log: %d entries / %d bytes" % (
        len(outcome.log), outcome.log_bytes))
    for key in ("race_checks", "fast_hits", "memts_update_broadcasts"):
        print("%-24s %d" % (key, outcome.counters[key]))
    return 0


def _cmd_inject(args) -> int:
    spec = get_workload(args.workload)
    campaign = run_campaign(
        spec.program_factory(WorkloadParams(scale=args.scale)),
        spec.name,
        CampaignConfig(n_runs=args.runs, base_seed=args.seed),
    )
    # One renderer shared with the campaign service (repro.service), so
    # the byte-identity contract between the two paths is structural.
    sys.stdout.write(format_campaign_report(campaign))
    return 0


def _cmd_figures(args) -> int:
    from repro.experiments import figures
    from repro.experiments.export import write_figure_csv

    if args.quick:
        config = SuiteConfig(
            runs_per_app=4,
            workloads=("fft", "raytrace", "ocean"),
            params=WorkloadParams(scale=0.5),
        )
    else:
        config = SuiteConfig(runs_per_app=args.runs)
    suite = Suite(config, jobs=args.jobs, cache_dir=args.cache)
    results = [
        driver(suite)
        for driver in (
            figures.figure10,
            figures.figure12,
            figures.figure13,
            figures.figure14,
            figures.figure15,
            figures.figure16,
            figures.figure17,
        )
    ]
    results.append(
        figures.figure11(
            params=config.params,
            workloads=config.workloads if args.quick else None,
        )
    )
    for figure in results:
        print(figure.render())
        print()
    if args.csv:
        import os

        os.makedirs(args.csv, exist_ok=True)
        for figure in results:
            name = figure.figure_id.lower().replace(" ", "")
            path = write_figure_csv(
                figure, os.path.join(args.csv, name + ".csv")
            )
            print("wrote %s" % path)
    if args.profile:
        _print_profile(suite)
    return 0


def _print_profile(suite) -> None:
    """Render the last fan-out's per-stage timing breakdown."""
    from repro.common.texttable import format_table

    report = suite.last_report
    if report is None or not report.outcomes:
        print("profile: no fan-out ran (all campaigns cache-served)")
        return
    totals = report.profile()
    if totals:
        print(format_table(
            ["stage", "seconds"],
            sorted(totals.items()),
            title="Aggregate stage time (summed across tasks)",
        ))
        print()
    rows = [
        (
            out.name, out.path, out.attempts,
            out.timings.get("record_s", 0.0),
            out.timings.get("store_io_s", 0.0),
            out.timings.get("analyze_s", 0.0),
            out.timings.get("task_s", 0.0),
        )
        for out in report.outcomes
    ]
    print(format_table(
        ["task", "path", "tries", "record_s", "store_io_s",
         "analyze_s", "task_s"],
        rows,
        title="Per-task stage timings",
    ))


def _cmd_characterize(args) -> int:
    from repro.workloads.validation import validate_workloads

    names = [args.workload] if args.workload else None
    report = validate_workloads(
        names, WorkloadParams(scale=args.scale)
    )
    print(report.render())
    if not report.all_race_free:
        for name, detail in report.failures.items():
            print("FAIL %s: %s" % (name, detail))
        return 1
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.reportgen import write_report

    if args.quick:
        config = SuiteConfig(
            runs_per_app=4,
            workloads=("fft", "raytrace", "ocean"),
            params=WorkloadParams(scale=0.5),
        )
    else:
        config = SuiteConfig(runs_per_app=args.runs)
    path = write_report(args.out, config=config)
    print("wrote %s" % path)
    return 0


def _cmd_sweep(args) -> int:
    """Checkpointed D-sensitivity sweep (the resumable campaign driver).

    The report goes to stdout and is byte-identical no matter how many
    interruptions and resumes preceded it; progress/accounting lines go
    to stderr so byte-comparing stdout (as the kill-anywhere CI step
    does) stays meaningful.
    """
    from pathlib import Path

    from repro.experiments.sensitivity import D_VALUES, d_sensitivity
    from repro.resilience.checkpoint import GracefulShutdown
    from repro.resilience.journal import RunCheckpoint
    from repro.trace.store import PackedTraceStore

    workloads = tuple(args.apps)
    params = WorkloadParams(scale=args.scale)
    identity = (
        "sweep-d", workloads, tuple(D_VALUES), args.runs, repr(params),
        args.seed,
    )
    store = None
    ckpt = None
    if args.cache:
        root = Path(args.cache)
        store = PackedTraceStore(root / "traces")
        ckpt = RunCheckpoint.open(
            root,
            identity=identity,
            kind="sweep",
            resume=args.resume,
            quarantine_dirs=((root / "traces" / "quarantine"),),
        )
        for key in ("tmp_pruned", "journals_pruned",
                    "quarantine_pruned"):
            if ckpt.stats.get(key):
                print("startup gc: %s=%d" % (key, ckpt.stats[key]),
                      file=sys.stderr)
        print("run id: %s%s" % (
            ckpt.run_id, " (resumed)" if ckpt.resumed else "",
        ), file=sys.stderr)
    try:
        with GracefulShutdown():
            sweep = d_sensitivity(
                workloads=workloads,
                runs_per_app=args.runs,
                params=params,
                base_seed=args.seed,
                trace_store=store,
                checkpoint=ckpt,
            )
        if ckpt is not None:
            ckpt.finish()
    except InterruptedRunError:
        if ckpt is not None:
            ckpt.interrupt()
        raise
    finally:
        if ckpt is not None:
            ckpt.close()
    print(sweep.render())
    if store is not None:
        # Resume accounting (stderr: not part of the comparable report).
        print("recording: %d simulated, %d replayed from store" % (
            store.stats["run_misses"], store.stats["run_hits"],
        ), file=sys.stderr)
    return 0


def _cmd_replay(args) -> int:
    spec = get_workload(args.workload)
    program = spec.build(WorkloadParams(scale=args.scale))
    trace = run_program(program, seed=args.seed)
    outcome = CordDetector(CordConfig(), program.n_threads).run(trace)
    replayed = replay_trace(program, outcome.log)
    verdict = verify_replay(trace, replayed)
    print("recorded %d events, log %d bytes" % (
        len(trace.events), outcome.log_bytes))
    print("replay verdict: %s" % verdict.detail)
    return 0 if verdict.equivalent else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cord-repro",
        description="CORD (HPCA 2006) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show Table 1").set_defaults(
        func=_cmd_list
    )

    def add_workload_options(p):
        p.add_argument("workload", choices=workload_names())
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--scale", type=float, default=1.0)

    run_p = sub.add_parser("run", help="execute one workload under CORD")
    add_workload_options(run_p)
    run_p.add_argument("--window", type=int, default=16,
                       help="the sync-read window D (default 16)")
    run_p.set_defaults(func=_cmd_run)

    inj_p = sub.add_parser(
        "inject", help="run a Section 3.4 injection campaign"
    )
    add_workload_options(inj_p)
    inj_p.add_argument("-n", "--runs", type=int, default=10)
    inj_p.set_defaults(func=_cmd_inject)

    fig_p = sub.add_parser(
        "figures", help="regenerate the paper's evaluation figures"
    )
    fig_p.add_argument("--quick", action="store_true")
    fig_p.add_argument("--runs", type=int, default=12)
    fig_p.add_argument(
        "--csv", metavar="DIR",
        help="also write each figure as CSV into DIR",
    )
    fig_p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the campaign fan-out "
             "(default: REPRO_JOBS or 1)",
    )
    fig_p.add_argument(
        "--cache", metavar="DIR", default=None,
        help="campaign cache directory (enables the checkpointed "
             "run-level scheduler; default: REPRO_CACHE_DIR)",
    )
    fig_p.add_argument(
        "--profile", action="store_true",
        help="print the per-stage timing breakdown "
             "(record/store-io/analyze per task) after the figures",
    )
    fig_p.set_defaults(func=_cmd_figures)

    rep_p = sub.add_parser(
        "replay", help="record one run, replay it, verify equivalence"
    )
    add_workload_options(rep_p)
    rep_p.set_defaults(func=_cmd_replay)

    sweep_p = sub.add_parser(
        "sweep",
        help="checkpointed D-sensitivity sweep (resumable: exit 71 "
             "means re-run with the same --cache to continue)",
    )
    sweep_p.add_argument(
        "--apps", nargs="+", choices=workload_names(),
        default=["fft", "ocean", "fmm"],
    )
    sweep_p.add_argument("-n", "--runs", type=int, default=8,
                         help="injection runs per application")
    sweep_p.add_argument("--scale", type=float, default=1.0)
    sweep_p.add_argument("--seed", type=int, default=2006)
    sweep_p.add_argument(
        "--cache", metavar="DIR",
        help="cache directory (enables recording store, journal, and "
             "crash-consistent resume)",
    )
    sweep_p.add_argument(
        "--resume", default="auto", metavar="RUN_ID",
        help="journal to resume: 'auto' (latest matching, the "
             "default), 'fresh' (ignore existing journals), or an "
             "explicit run id",
    )
    sweep_p.set_defaults(func=_cmd_sweep)

    char_p = sub.add_parser(
        "characterize",
        help="validate race-freedom and profile the workloads",
    )
    char_p.add_argument(
        "workload", nargs="?", choices=workload_names(), default=None
    )
    char_p.add_argument("--scale", type=float, default=1.0)
    char_p.set_defaults(func=_cmd_characterize)

    report_p = sub.add_parser(
        "report", help="write the full Markdown reproduction report"
    )
    report_p.add_argument("--out", default="cord_report.md")
    report_p.add_argument("--quick", action="store_true")
    report_p.add_argument("--runs", type=int, default=12)
    report_p.set_defaults(func=_cmd_report)

    return parser


#: Library failure domain -> process exit code, most specific first.
#: 2 follows argparse's usage-error convention; the resilience taxonomy
#: gets the 66+ range (inspired by BSD sysexits) so scripts driving long
#: campaigns can tell "your cache is damaged" (66) from "a worker hung"
#: (67) from "even the scalar path failed" (68) without parsing stderr.
#: 71 is special: "interrupted, resumable" -- nothing failed, re-run
#: with the same cache/--resume to continue where the drain stopped.
EXIT_CODES = (
    (ConfigError, 2),
    (StoreCorruptError, 66),
    (WorkerTimeoutError, 67),
    (DegradedPathError, 68),
    (InterruptedRunError, 71),
    (PipelineError, 69),
    (CordError, 70),
)


def exit_code_for(exc: BaseException) -> int:
    """The exit code for a library exception (see :data:`EXIT_CODES`)."""
    for exc_type, code in EXIT_CODES:
        if isinstance(exc, exc_type):
            return code
    return 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CordError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())
