"""Registry of all workload analogues, grouped into families.

Two families today:

* ``splash2`` -- the paper's twelve Table 1 application analogues, in
  Table 1 order (alphabetical pairs, as in the paper);
* ``server`` -- the five traffic-shaped generators
  (:mod:`repro.workloads.server`).

Every entry flows through the same machinery -- ``PackedTrace``
recording, injection campaigns, sweeps, golden replay fixtures -- so
registration here is the *only* step a new workload (or family) needs.
Nothing in the registry, the validators, or the experiment drivers may
assume a fixed workload count or Splash-2 naming; family-scoped views
exist for the paper-reproduction surfaces (Table 1 is a Splash-2
artifact, for example).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.workloads import (
    barnes,
    cholesky,
    fft,
    fmm,
    lu,
    ocean,
    radiosity,
    radix,
    raytrace,
    server,
    volrend,
    water_n2,
    water_sp,
)
from repro.workloads.base import WorkloadSpec

#: Families in registry order; each family's list is its display order.
_FAMILIES: Dict[str, List[WorkloadSpec]] = {
    "splash2": [
        barnes.SPEC,
        cholesky.SPEC,
        fft.SPEC,
        fmm.SPEC,
        lu.SPEC,
        ocean.SPEC,
        radiosity.SPEC,
        radix.SPEC,
        raytrace.SPEC,
        volrend.SPEC,
        water_n2.SPEC,
        water_sp.SPEC,
    ],
    "server": list(server.SPECS),
}

for _family, _specs in _FAMILIES.items():
    for _spec in _specs:
        if _spec.family != _family:
            raise ConfigError(
                "workload %r declares family %r but is registered "
                "under %r" % (_spec.name, _spec.family, _family)
            )

_BY_NAME: Dict[str, WorkloadSpec] = {}
for _specs in _FAMILIES.values():
    for _spec in _specs:
        if _spec.name in _BY_NAME:
            raise ConfigError(
                "duplicate workload name %r in registry" % _spec.name
            )
        _BY_NAME[_spec.name] = _spec


def families() -> List[str]:
    """Registered family names, in registry order."""
    return list(_FAMILIES)


def all_workloads(family: Optional[str] = None) -> List[WorkloadSpec]:
    """Every registered analogue, optionally restricted to one family."""
    if family is None:
        return [spec for specs in _FAMILIES.values() for spec in specs]
    try:
        return list(_FAMILIES[family])
    except KeyError:
        raise ConfigError(
            "unknown workload family %r (have: %s)"
            % (family, ", ".join(_FAMILIES))
        ) from None


def workload_names(family: Optional[str] = None) -> List[str]:
    return [spec.name for spec in all_workloads(family)]


def get_workload(name: str) -> WorkloadSpec:
    """Look up one analogue by name (any family)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            "unknown workload %r (have: %s)"
            % (name, ", ".join(sorted(_BY_NAME)))
        ) from None
