"""Registry of all Table 1 application analogues."""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigError
from repro.workloads import (
    barnes,
    cholesky,
    fft,
    fmm,
    lu,
    ocean,
    radiosity,
    radix,
    raytrace,
    volrend,
    water_n2,
    water_sp,
)
from repro.workloads.base import WorkloadSpec

#: Table 1 order (alphabetical pairs, as in the paper).
_SPECS: List[WorkloadSpec] = [
    barnes.SPEC,
    cholesky.SPEC,
    fft.SPEC,
    fmm.SPEC,
    lu.SPEC,
    ocean.SPEC,
    radiosity.SPEC,
    radix.SPEC,
    raytrace.SPEC,
    volrend.SPEC,
    water_n2.SPEC,
    water_sp.SPEC,
]

_BY_NAME: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}


def all_workloads() -> List[WorkloadSpec]:
    """All twelve application analogues, in Table 1 order."""
    return list(_SPECS)


def workload_names() -> List[str]:
    return [spec.name for spec in _SPECS]


def get_workload(name: str) -> WorkloadSpec:
    """Look up one analogue by its Table 1 application name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            "unknown workload %r (have: %s)"
            % (name, ", ".join(sorted(_BY_NAME)))
        ) from None
