"""Fast Multipole Method analogue (Splash-2 ``fmm``, input ``2048``).

FMM combines barnes-like tree cells with list-driven interaction work:
threads pull interaction tasks from a shared queue, read the participating
cells' multipole expansions, and accumulate results into cells under
per-cell locks; tree-level phases are separated by barriers.  The paper
notes fmm injections rarely manifest (3 errors in 100 runs) because much
of its synchronization is dynamically redundant -- the analogue keeps many
repeat-acquisitions of the same locks for the same reason.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import barrier_wait, flag_set, flag_wait
from repro.sync.objects import Barrier, Flag, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    pattern_rng,
    pop_task,
    private_sweep,
    read_block,
    write_block,
)

N_CELLS = 32
CELL_WORDS = 6
PHASES = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    phase_barrier = Barrier.allocate(space, params.n_threads, "phase")
    queue_lock = Mutex.allocate(space, "queue")
    queue_head = space.alloc("queue.head", align_to_line=True)
    cell_locks = [
        Mutex.allocate(space, "cell%d" % i) for i in range(N_CELLS)
    ]
    cells = [
        space.alloc_array("cell%d" % i, CELL_WORDS)
        for i in range(N_CELLS)
    ]
    n_tasks = params.scaled(80)
    scratch = [
        space.alloc_array("expansion.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    # Upward-pass pipeline: each thread publishes translated expansions
    # chunk-by-chunk to its neighbor, signalling with a per-producer flag
    # counter; the consumer waits coarsely, once per chunk group.  The
    # producer side performs many synchronization *writes* with no reads
    # in between -- the clock pattern of the paper's Figure 8, which is
    # what makes the window parameter D matter (Figures 16/17).
    chunk_words = 4
    n_chunks = 24
    chunk_group = 12
    up_chunks = [
        space.alloc_array(
            "upward.t%d" % t, n_chunks * chunk_words
        )
        for t in range(params.n_threads)
    ]
    up_flags = [
        Flag.allocate(space, "upflag.t%d" % t)
        for t in range(params.n_threads)
    ]
    # Downward pass: the reverse pipeline -- local expansions flow from
    # each thread to its *previous* neighbor with the same batched-flag
    # signalling.
    down_chunks = [
        space.alloc_array(
            "downward.t%d" % t, n_chunks * chunk_words
        )
        for t in range(params.n_threads)
    ]
    down_flags = [
        Flag.allocate(space, "downflag.t%d" % t)
        for t in range(params.n_threads)
    ]

    shape_rng = pattern_rng(params, "fmm", 0).fork("interactions")
    # Interaction lists are clustered: most tasks touch a hot subset of
    # cells, so the same locks are re-acquired by the same threads often
    # (dynamically redundant synchronization).
    hot = [shape_rng.randrange(N_CELLS) for _ in range(6)]
    tasks = []
    for _ in range(n_tasks):
        if shape_rng.random() < 0.7:
            target = hot[shape_rng.randrange(len(hot))]
        else:
            target = shape_rng.randrange(N_CELLS)
        sources = [shape_rng.randrange(N_CELLS) for _ in range(3)]
        tasks.append((target, sources))

    def body(tid):
        cursor = 0
        for _phase in range(PHASES):
            while True:
                index = yield from pop_task(
                    queue_lock, queue_head, n_tasks * (_phase + 1)
                )
                if index is None:
                    break
                target, sources = tasks[index % n_tasks]
                for cell in sources:
                    yield from read_block(cells[cell][:3])
                # Local multipole expansion work before the shared
                # accumulation.
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 10
                )
                yield from compute(params.compute_grain * 2)
                yield from locked_update_block(
                    cell_locks[target], cells[target][3:5]
                )
            yield from barrier_wait(phase_barrier)

        # Upward pass: publish all chunks to the neighbor (sync writes
        # only), then consume the predecessor's chunks group by group.
        mine = up_chunks[tid]
        for chunk in range(n_chunks):
            yield from write_block(
                mine[chunk * chunk_words:(chunk + 1) * chunk_words],
                tid + 1,
            )
            yield from flag_set(up_flags[tid], chunk + 1)
            yield from compute(params.compute_grain)
        prev = (tid - 1) % params.n_threads
        theirs = up_chunks[prev]
        for group_end in range(chunk_group, n_chunks + 1, chunk_group):
            yield from flag_wait(up_flags[prev], group_end)
            yield from read_block(
                theirs[
                    (group_end - chunk_group) * chunk_words:
                    group_end * chunk_words
                ]
            )
            yield from compute(params.compute_grain * 2)
        yield from barrier_wait(phase_barrier)

        # Downward pass: publish local expansions for the previous
        # neighbor, then consume the next neighbor's.
        mine_down = down_chunks[tid]
        for chunk in range(n_chunks):
            yield from write_block(
                mine_down[chunk * chunk_words:(chunk + 1) * chunk_words],
                tid + 1,
            )
            yield from flag_set(down_flags[tid], chunk + 1)
            yield from compute(params.compute_grain)
        nxt = (tid + 1) % params.n_threads
        theirs_down = down_chunks[nxt]
        for group_end in range(chunk_group, n_chunks + 1, chunk_group):
            yield from flag_wait(down_flags[nxt], group_end)
            yield from read_block(
                theirs_down[
                    (group_end - chunk_group) * chunk_words:
                    group_end * chunk_words
                ]
            )
            yield from compute(params.compute_grain * 2)
        yield from barrier_wait(phase_barrier)

    return Program([body] * params.n_threads, space, name="fmm")


SPEC = WorkloadSpec(
    name="fmm",
    input_label="2048 particles",
    description="interaction task queue with clustered per-cell locks",
    build=build,
    sync_style="task queue + cell locks + barriers",
)
