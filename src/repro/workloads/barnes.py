"""Barnes-Hut N-body analogue (Splash-2 ``barnes``, input ``n2048``).

Structure mirrored from the original:

* **Tree-build phase**: threads insert bodies into a shared octree; each
  insertion locks a small path of tree cells and updates their fields
  (fine-grained per-cell locks).
* **Force phase**: read-mostly traversal of many cells per body, then a
  write to the body's own accumulator (partitioned, little write sharing).
* Phases are separated by barriers and the whole step repeats.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import acquire, barrier_wait, release
from repro.sync.objects import Barrier, Mutex
from repro.program.ops import ReadOp, WriteOp
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    pattern_rng,
    private_sweep,
    read_block,
    write_block,
)

N_CELLS = 48
CELL_WORDS = 4
STEPS = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    step_barrier = Barrier.allocate(space, params.n_threads, "step")
    cell_locks = [
        Mutex.allocate(space, "cell%d" % i) for i in range(N_CELLS)
    ]
    cells = [
        space.alloc_array("cell%d.data" % i, CELL_WORDS)
        for i in range(N_CELLS)
    ]
    bodies_per_thread = params.scaled(40)
    acc = [
        space.alloc_array("acc.t%d" % t, bodies_per_thread * 2)
        for t in range(params.n_threads)
    ]
    scratch = [
        space.alloc_array("scratch.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    # Root-cell bounds block: long-range lock-protected sharing; thread 0
    # refreshes it in layers early in the force phase, everyone reads it
    # at phase end (Figure 14/15's "far apart" races when injected away).
    bounds_lock = Mutex.allocate(space, "bounds")
    bounds = space.alloc_array("bounds", 8)
    # Costzones repartitioning: between steps, threads claim body ranges
    # from a shared cursor under a lock (work reassignment by cost).
    zone_lock = Mutex.allocate(space, "zones")
    zone_cursor = space.alloc("zones.cursor", align_to_line=True)

    def body(tid):
        rng = pattern_rng(params, "barnes", tid)
        cursor = 0
        for _step in range(STEPS):
            # Claim this step's body zones (two claims per thread).
            for _claim in range(2):
                yield from acquire(zone_lock)
                claimed = yield ReadOp(zone_cursor)
                yield WriteOp(
                    zone_cursor, (claimed or 0) + bodies_per_thread // 2
                )
                yield from release(zone_lock)
                yield from compute(params.compute_grain)
            # Tree build: lock a tree cell per body insertion, then do
            # private bookkeeping on the body record.
            for _body in range(bodies_per_thread):
                cell = rng.randrange(N_CELLS)
                yield from locked_update_block(
                    cell_locks[cell], cells[cell][:2]
                )
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 6
                )
                yield from compute(params.compute_grain)
            yield from barrier_wait(step_barrier)
            # Force computation: read many cells, write own accumulators.
            for index in range(bodies_per_thread):
                if tid == 0 and index in (0, 1, 2):
                    # Early layered updates only: later reads are far
                    # away, so the updates' cached history is displaced
                    # by the time an injected-away lock lets a read race.
                    yield from acquire(bounds_lock)
                    yield from write_block(
                        bounds[2 * index:2 * index + 4], tid + 1
                    )
                    yield from release(bounds_lock)
                touched = [rng.randrange(N_CELLS) for _ in range(6)]
                for cell in touched:
                    yield from read_block(cells[cell])
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 8
                )
                yield from compute(params.compute_grain * 3)
                yield from write_block(
                    acc[tid][2 * index:2 * index + 2], tid + 1
                )
            # Large local working-set phase before consulting the shared
            # block: displaces older metadata from small caches (the
            # paper's reduced-cache methodology makes exactly this the
            # L1Cache configuration's weakness).
            cursor = yield from private_sweep(
                scratch[tid], cursor, 96, stride=17
            )
            # Phase end: the phase's only consultation of the bounds --
            # removing this lock instance leaves the early updates and
            # this read unordered, with a whole phase of traffic between.
            yield from acquire(bounds_lock)
            yield from read_block(bounds)
            yield from release(bounds_lock)
            yield from barrier_wait(step_barrier)

    return Program(
        [body] * params.n_threads, space, name="barnes"
    )


SPEC = WorkloadSpec(
    name="barnes",
    input_label="2048 bodies",
    description="octree build with per-cell locks + read-mostly force phase",
    build=build,
    sync_style="cell locks + barriers",
)
