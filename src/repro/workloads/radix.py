"""Radix sort analogue (Splash-2 ``radix``, input ``256K keys``).

The Splash-2 radix sort alternates strictly barrier-separated phases:
local histogramming (private writes), a shared prefix/offset combination
(lock-protected global buckets), and a permutation phase that scatters
keys into a shared output array.  Ranks are disjoint by construction (a
permutation), but ranks of different threads interleave *within* cache
lines -- word-disjoint line sharing, exactly what CORD's per-word access
bits exist to keep from looking like races.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import barrier_wait
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_rmw,
    private_sweep,
    read_block,
    write_block,
)

N_BUCKETS = 16
PASSES = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    phase_barrier = Barrier.allocate(space, params.n_threads, "phase")
    bucket_lock = Mutex.allocate(space, "buckets")
    global_buckets = space.alloc_array("gbuckets", N_BUCKETS)
    local_hist = [
        space.alloc_array("hist.t%d" % t, N_BUCKETS)
        for t in range(params.n_threads)
    ]
    keys_per_thread = params.scaled(120)
    n_keys = keys_per_thread * params.n_threads
    # Real keys and a real stable radix rank per digit pass: the values
    # are fixed at build time (one input set), so the rank permutations
    # are precomputed exactly as the real sort would produce them --
    # disjoint ranks, but interleaved within output lines.
    from repro.workloads.base import pattern_rng as _rng

    key_rng = _rng(params, "radix", 0).fork("keys")
    keys = [key_rng.randrange(256) for _ in range(n_keys)]

    def stable_ranks(values, digit_shift):
        order = sorted(
            range(len(values)),
            key=lambda i: ((values[i] >> digit_shift) & 0xF, i),
        )
        ranks = [0] * len(values)
        for position, index in enumerate(order):
            ranks[index] = position
        return ranks

    ranks_low = stable_ranks(keys, 0)
    keys_after_low = [0] * n_keys
    for index, rank in enumerate(ranks_low):
        keys_after_low[rank] = keys[index]
    ranks_high = stable_ranks(keys_after_low, 4)

    pass_ranks = [ranks_low, ranks_high]
    array_a = space.alloc_array("arrayA", n_keys)
    array_b = space.alloc_array("arrayB", n_keys)
    pass_arrays = [(array_a,), (array_a, array_b)]

    scratch = [
        space.alloc_array("keys.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]

    def body(tid):
        cursor = 0
        for _pass in range(PASSES):
            # Local histogram: scan private keys, bump private buckets.
            for _chunk in range(keys_per_thread // 8):
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 12
                )
                yield from write_block(local_hist[tid][:8], tid + 1)
                yield from compute(params.compute_grain)
            yield from barrier_wait(phase_barrier)
            # Global offsets: every thread folds its histogram into the
            # shared buckets under the bucket lock.
            for bucket in range(0, N_BUCKETS, 4):
                yield from locked_rmw(
                    bucket_lock, global_buckets[bucket]
                )
            yield from barrier_wait(phase_barrier)
            # Permutation: scatter this thread's keys to their stable
            # ranks for this digit.  Pass 0 writes arrayA; pass 1 reads
            # the low-digit-sorted arrayA (everyone's writes, ordered by
            # the barrier) and scatters into arrayB.
            yield from read_block(global_buckets[:8])
            ranks = pass_ranks[_pass]
            source, dest = (
                (None, array_a) if _pass == 0 else (array_a, array_b)
            )
            for k in range(keys_per_thread):
                index = tid * keys_per_thread + k
                if source is not None:
                    yield ReadOp(source[ranks_low[index]])
                yield WriteOp(dest[ranks[index]], keys[index])
                if k % 8 == 7:
                    yield from compute(params.compute_grain)
            yield from barrier_wait(phase_barrier)

    return Program([body] * params.n_threads, space, name="radix")


SPEC = WorkloadSpec(
    name="radix",
    input_label="256K keys",
    description="barrier-phased histogram sort with line-interleaved writes",
    build=build,
    sync_style="barriers + bucket lock",
)
