"""Blocked dense LU factorization analogue (Splash-2 ``lu``, ``512x512``).

Splash-2 LU is the textbook barrier pipeline: at step *k* the owner of the
diagonal block factors it, a barrier publishes it, and every thread then
updates its owned blocks of the trailing matrix by *reading* the diagonal
and perimeter blocks and writing its own blocks.  Sharing is one-to-many
producer/consumer across barriers with no locks at all.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import acquire, barrier_wait, release
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    private_sweep,
    read_block,
    write_block,
)

BLOCK_WORDS = 16


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    step_barrier = Barrier.allocate(space, params.n_threads, "step")
    n_steps = params.scaled(6, minimum=2)
    diag = [
        space.alloc_array("diag%d" % k, BLOCK_WORDS)
        for k in range(n_steps)
    ]
    perimeter = [
        space.alloc_array("perim%d" % k, BLOCK_WORDS)
        for k in range(n_steps)
    ]
    blocks_per_thread = params.scaled(4, minimum=2)
    owned = [
        [
            space.alloc_array(
                "blk.t%d.%d" % (t, b), BLOCK_WORDS
            )
            for b in range(blocks_per_thread)
        ]
        for t in range(params.n_threads)
    ]

    scratch = [
        space.alloc_array("pivotbuf.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    # Pivot-norms block: lock-protected long-range sharing within a step
    # (owner writes layers right after the first barrier, everyone reads
    # at the end of its trailing update -- no other sync in between).
    norms_lock = Mutex.allocate(space, "norms")
    norms = space.alloc_array("norms", 8)

    def body(tid):
        cursor = 0
        for k in range(n_steps):
            owner = k % params.n_threads
            if tid == owner:
                # Factor the diagonal block and its perimeter row.
                yield from compute(params.compute_grain * 4)
                yield from write_block(diag[k], k + 1)
                yield from write_block(perimeter[k], k + 1)
            yield from barrier_wait(step_barrier)
            if tid == owner:
                for layer in range(3):
                    yield from acquire(norms_lock)
                    yield from write_block(
                        norms[2 * layer:2 * layer + 4], k + 1
                    )
                    yield from release(norms_lock)
            # Trailing update: read the published diagonal block, update
            # own blocks with private pivot-row staging in between.
            for block in owned[tid]:
                yield from read_block(diag[k][:8])
                yield from read_block(perimeter[k][:8])
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 14
                )
                yield from compute(params.compute_grain * 2)
                yield from write_block(block[:8], tid + 1)
            # Large local working-set phase before consulting the shared
            # block: displaces older metadata from small caches (the
            # paper's reduced-cache methodology makes exactly this the
            # L1Cache configuration's weakness).
            cursor = yield from private_sweep(
                scratch[tid], cursor, 96, stride=17
            )
            # Step end: consult the pivot norms.
            yield from acquire(norms_lock)
            yield from read_block(norms)
            yield from release(norms_lock)
            yield from barrier_wait(step_barrier)

    return Program([body] * params.n_threads, space, name="lu")


SPEC = WorkloadSpec(
    name="lu",
    input_label="512x512 matrix",
    description="barrier pipeline: factored diagonal blocks read by all",
    build=build,
    sync_style="barriers only",
)
