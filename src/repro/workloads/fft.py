"""1-D FFT analogue (Splash-2 ``fft``, input ``m16``).

The Splash-2 FFT is barrier-structured: local butterfly computation on a
thread's own partition, then an all-to-all *transpose* in which each thread
reads blocks produced by every other thread and writes them into its own
partition, then more local computation.  Sharing is therefore bulk
producer->consumer across barriers -- very different from lock-based apps,
and a good exercise of CORD's per-line timestamp reuse (spatially local
reads of remotely-written lines).
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import acquire, barrier_wait, flag_set, flag_wait, release
from repro.sync.objects import Barrier, Flag, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    private_sweep,
    read_block,
    write_block,
)

ITERATIONS = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    phase_barrier = Barrier.allocate(space, params.n_threads, "phase")
    chunk_words = params.scaled(96, minimum=params.n_threads * 4)
    source = [
        space.alloc_array("src.t%d" % t, chunk_words)
        for t in range(params.n_threads)
    ]
    dest = [
        space.alloc_array("dst.t%d" % t, chunk_words)
        for t in range(params.n_threads)
    ]
    block = chunk_words // params.n_threads
    scratch = [
        space.alloc_array("twiddle.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    # Final pipelined verification pass: each thread streams its result
    # segments to the next thread, signalling per segment with a flag
    # counter (sync writes only on the producer side); the consumer waits
    # once per segment group -- a Figure 8-style clock pattern.
    seg_words = 4
    n_segments = 20
    seg_group = 10
    stream = [
        space.alloc_array("stream.t%d" % t, n_segments * seg_words)
        for t in range(params.n_threads)
    ]
    stream_flags = [
        Flag.allocate(space, "streamflag.t%d" % t)
        for t in range(params.n_threads)
    ]
    # Plan block: lock-protected long-range sharing within an iteration
    # (thread 0 writes layers right after the first barrier, all threads
    # read at the end of the local phase -- no other sync in between).
    plan_lock = Mutex.allocate(space, "plan")
    plan = space.alloc_array("plan", 8)

    def body(tid):
        cursor = 0
        for _iteration in range(ITERATIONS):
            if tid == 0:
                for layer in range(3):
                    yield from acquire(plan_lock)
                    yield from write_block(
                        plan[2 * layer:2 * layer + 4], _iteration + 1
                    )
                    yield from release(plan_lock)
            # Local butterflies: write own source partition, with private
            # twiddle-table work in between.
            for start in range(0, chunk_words, 8):
                yield from write_block(
                    source[tid][start:start + 8], tid + 1
                )
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 10
                )
                yield from compute(params.compute_grain)
            # Large local working-set phase before consulting the shared
            # block: displaces older metadata from small caches (the
            # paper's reduced-cache methodology makes exactly this the
            # L1Cache configuration's weakness).
            cursor = yield from private_sweep(
                scratch[tid], cursor, 96, stride=17
            )
            # Phase end: consult the plan before the transpose.
            yield from acquire(plan_lock)
            yield from read_block(plan)
            yield from release(plan_lock)
            yield from barrier_wait(phase_barrier)
            # Transpose: read block p of every peer, write own dest.
            for peer in range(params.n_threads):
                peer_block = source[peer][tid * block:(tid + 1) * block]
                yield from read_block(peer_block)
                yield from write_block(
                    dest[tid][peer * block:(peer + 1) * block], tid + 1
                )
                yield from compute(params.compute_grain)
            yield from barrier_wait(phase_barrier)
            # Second local phase on the transposed data.
            for start in range(0, chunk_words, 8):
                yield from read_block(dest[tid][start:start + 8])
                yield from compute(params.compute_grain)
            yield from barrier_wait(phase_barrier)

        # Streamed result check: publish all segments (sync writes only),
        # then consume the predecessor's segments in coarse groups.
        mine = stream[tid]
        for segment in range(n_segments):
            yield from write_block(
                mine[segment * seg_words:(segment + 1) * seg_words],
                tid + 1,
            )
            yield from flag_set(stream_flags[tid], segment + 1)
            yield from compute(params.compute_grain)
        prev = (tid - 1) % params.n_threads
        theirs = stream[prev]
        for group_end in range(seg_group, n_segments + 1, seg_group):
            yield from flag_wait(stream_flags[prev], group_end)
            yield from read_block(
                theirs[
                    (group_end - seg_group) * seg_words:
                    group_end * seg_words
                ]
            )
            yield from compute(params.compute_grain)
        yield from barrier_wait(phase_barrier)

    return Program([body] * params.n_threads, space, name="fft")


SPEC = WorkloadSpec(
    name="fft",
    input_label="2^16 points (m16)",
    description="barrier-phased all-to-all transpose with bulk sharing",
    build=build,
    sync_style="barriers",
)
