"""Synthetic workload analogues, in registry families.

The ``splash2`` family reproduces the paper's evaluation set: twelve
Splash-2 applications with reduced input sets.  We cannot run the
original binaries on a Python functional simulator, so each application
is re-expressed as a *sharing-and-synchronization analogue*: a thread
program that reproduces the app's synchronization structure (barriers,
task queues, fine-grained locks, pipeline flags) and data-sharing
pattern (read-only scenes, stencil boundaries, all-to-all transposes,
lock-protected accumulations) at a scale tuned for reduced caches --
exactly the property the detection experiments depend on.

The ``server`` family (:mod:`repro.workloads.server`) covers the
request-shaped traffic patterns production services exercise: worker
pools, bounded-queue pipelines, event-loop handoff, cache invalidation,
and CAS/retry loops.  See ``docs/workloads.md``.

Every workload is deterministic: its shape comes from a fixed per-workload
pattern seed, so two runs differ only by scheduler interleaving, like the
paper's reruns of one binary.

Use :func:`repro.workloads.registry.get_workload` /
:func:`repro.workloads.registry.all_workloads` to enumerate them
(``all_workloads(family=...)`` scopes to one family).
"""

from repro.workloads.base import WorkloadParams, WorkloadSpec
from repro.workloads.registry import (
    all_workloads,
    families,
    get_workload,
    workload_names,
)

__all__ = [
    "WorkloadParams",
    "WorkloadSpec",
    "all_workloads",
    "families",
    "get_workload",
    "workload_names",
]
