"""Producer/consumer stage pipeline over bounded queues (``pipeline``).

Thread i is pipeline stage i.  Stage 0 produces items; each later stage
pops from the bounded queue upstream of it, transforms the item, and
pushes downstream; the last stage folds results into a tally under a
lock.  A queue is a ring of ``QUEUE_CAPACITY`` slots plus two monotone
flags: ``produced`` (raised by the upstream stage after writing a slot)
and ``consumed`` (raised by the downstream stage after reading it).
Producers observe backpressure by waiting until the consumer is at most
``QUEUE_CAPACITY`` items behind before overwriting a ring slot.

Sharing shape: each queue has exactly one producer and one consumer, so
each flag has a single setter (monotone by construction) and every slot
write/read pair is ordered by a flag edge -- the producer/consumer
discipline whose wait, removed by injection, rereads a stale slot or
tears a ring overwrite, both manifest data races.
"""

from __future__ import annotations

from repro.program.builder import Program
from repro.program.address_space import AddressSpace
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import flag_set, flag_wait
from repro.sync.objects import Flag, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    pattern_rng,
    private_sweep,
)

#: Ring slots per inter-stage queue.
QUEUE_CAPACITY = 4
#: Words per queue item (id, payload).
ITEM_WORDS = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    n_stages = params.n_threads
    n_queues = n_stages - 1
    n_items = params.scaled(40)

    produced = [
        Flag.allocate(space, "produced.q%d" % q) for q in range(n_queues)
    ]
    consumed = [
        Flag.allocate(space, "consumed.q%d" % q) for q in range(n_queues)
    ]
    rings = [
        space.alloc_array(
            "ring.q%d" % q, QUEUE_CAPACITY * ITEM_WORDS
        )
        for q in range(n_queues)
    ]
    tally_lock = Mutex.allocate(space, "tally_lock")
    tally = space.alloc_array("tally", 4)
    scratch = [
        space.alloc_array("scratch.s%d" % s, 256) for s in range(n_stages)
    ]

    def stage(sid):
        rng = pattern_rng(params, "pipeline", sid)
        weights = [1 + rng.randrange(5) for _ in range(n_items)]

        def push(q, k, ident, payload):
            # Backpressure: don't overwrite slot k % capacity until the
            # consumer has retired item k - capacity.
            if k >= QUEUE_CAPACITY:
                yield from flag_wait(
                    consumed[q], k - QUEUE_CAPACITY + 1
                )
            base = (k % QUEUE_CAPACITY) * ITEM_WORDS
            yield WriteOp(rings[q][base], ident)
            yield WriteOp(rings[q][base + 1], payload)
            yield from flag_set(produced[q], k + 1)

        def pop(q, k):
            yield from flag_wait(produced[q], k + 1)
            base = (k % QUEUE_CAPACITY) * ITEM_WORDS
            ident = yield ReadOp(rings[q][base])
            payload = yield ReadOp(rings[q][base + 1])
            yield from flag_set(consumed[q], k + 1)
            return ident or 0, payload or 0

        def body(tid):
            cursor = 0
            for k in range(n_items):
                if sid == 0:
                    ident, payload = k + 1, weights[k]
                else:
                    ident, payload = yield from pop(sid - 1, k)
                # Stage transform against private scratch.
                cursor = yield from private_sweep(
                    scratch[sid], cursor, 2 + weights[k] % 3
                )
                yield from compute(params.compute_grain // 2)
                if sid < n_stages - 1:
                    yield from push(sid, k, ident, payload + weights[k])
                else:
                    # Sink stage: fold the finished item into the tally.
                    yield from locked_update_block(
                        tally_lock, tally[: 1 + (payload & 1)],
                        delta=payload,
                    )

        return body

    bodies = [stage(s) for s in range(n_stages)]
    return Program(bodies, space, name="pipeline")


SPEC = WorkloadSpec(
    name="pipeline",
    input_label="bounded queues",
    description="stage-per-thread pipeline over bounded ring queues "
                "with produced/consumed flag pairs",
    build=build,
    sync_style="bounded-queue flag handoff",
    family="server",
)
