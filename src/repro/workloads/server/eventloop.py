"""Async event-loop with I/O-completion handoff (``eventloop``).

Thread 0 is the reactor: it owns the loop state (callback table, timers,
connection words) and is the *only* thread that ever touches it -- the
single-threaded event-loop discipline, where loop state needs no locks
because handoff edges order everything.  Threads 1..N-1 are I/O workers:
the reactor submits operations to them through per-worker submission
flags (after writing the request words), lets up to ``MAX_INFLIGHT``
rounds float, then reaps completions in submission order (an io_uring
style in-order completion queue), reads each result, and runs the
callback against loop-local state.

Sharing shape: every cross-thread word (request and result slots) is
ordered by exactly one flag edge in each direction; the loop state is
thread-confined.  Removing a completion *wait* makes the reactor run a
callback against a result the worker is still writing -- the archetypal
use-after-incomplete-I/O race -- while removing a submission wait makes
a worker read a half-written request.
"""

from __future__ import annotations

from repro.program.builder import Program
from repro.program.address_space import AddressSpace
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import flag_set, flag_wait
from repro.sync.objects import Flag
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    pattern_rng,
    private_sweep,
)

#: Submission rounds the reactor lets float before reaping.
MAX_INFLIGHT = 2
#: Words per I/O request and per completion result.
REQUEST_WORDS = 2
RESULT_WORDS = 2
#: Loop-state words the callbacks mutate (reactor-confined).
LOOP_STATE_WORDS = 8


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    n_workers = params.n_threads - 1
    rounds = params.scaled(24)

    submit = [
        Flag.allocate(space, "submit.w%d" % w) for w in range(n_workers)
    ]
    complete = [
        Flag.allocate(space, "complete.w%d" % w) for w in range(n_workers)
    ]
    requests = [
        space.alloc_array("request.w%d" % w, rounds * REQUEST_WORDS)
        for w in range(n_workers)
    ]
    results = [
        space.alloc_array("result.w%d" % w, rounds * RESULT_WORDS)
        for w in range(n_workers)
    ]
    loop_state = space.alloc_array("loop_state", LOOP_STATE_WORDS)
    scratch = [
        space.alloc_array("scratch.w%d" % w, 256) for w in range(n_workers)
    ]

    rng = pattern_rng(params, "eventloop", 0).fork("ops")
    op_kinds = [
        [rng.randrange(4) for _ in range(rounds)] for _ in range(n_workers)
    ]

    def reactor(tid):
        def reap(r):
            # In-order completion reaping: wait, read the result, run
            # the callback against reactor-confined loop state.
            for w in range(n_workers):
                yield from flag_wait(complete[w], r + 1)
                base = r * RESULT_WORDS
                status = yield ReadOp(results[w][base])
                payload = yield ReadOp(results[w][base + 1])
                slot = (w + r + (status or 0)) % LOOP_STATE_WORDS
                old = yield ReadOp(loop_state[slot])
                yield WriteOp(
                    loop_state[slot], (old or 0) + (payload or 0)
                )
                yield from compute(params.compute_grain // 4)

        for r in range(rounds):
            for w in range(n_workers):
                base = r * REQUEST_WORDS
                yield WriteOp(requests[w][base], op_kinds[w][r])
                yield WriteOp(requests[w][base + 1], r + 1)
                yield from flag_set(submit[w], r + 1)
            if r >= MAX_INFLIGHT:
                yield from reap(r - MAX_INFLIGHT)
        for r in range(max(0, rounds - MAX_INFLIGHT), rounds):
            yield from reap(r)

    def worker(wid):
        def body(tid):
            cursor = 0
            for r in range(rounds):
                yield from flag_wait(submit[wid], r + 1)
                base = r * REQUEST_WORDS
                kind = yield ReadOp(requests[wid][base])
                seq = yield ReadOp(requests[wid][base + 1])
                # The modeled I/O: latency as compute, effect as a
                # private-buffer sweep.
                cursor = yield from private_sweep(
                    scratch[wid], cursor, 3 + (kind or 0)
                )
                yield from compute(params.compute_grain)
                yield WriteOp(results[wid][base], (kind or 0) + 1)
                yield WriteOp(results[wid][base + 1], seq or 0)
                yield from flag_set(complete[wid], r + 1)

        return body

    bodies = [reactor] + [worker(w) for w in range(n_workers)]
    return Program(bodies, space, name="eventloop")


SPEC = WorkloadSpec(
    name="eventloop",
    input_label="completion queue",
    description="single-threaded reactor with in-order I/O completion "
                "handoff to a worker pool",
    build=build,
    sync_style="submit/complete flag pairs",
    family="server",
)
