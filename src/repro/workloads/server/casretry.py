"""Lock-free CAS/retry counters (``casretry``).

Every thread performs optimistic fetch-and-add transactions against a
few hot counters plus a private tail of cold ones: load the counter's
version (the "load-linked"), do speculative work, then attempt the
commit -- re-read the version and, only if unchanged, publish the new
value and bump the version; otherwise loop and retry.  The atomic
load/commit pairs are modeled as micro-critical-sections on a per-word
reservation mutex (hardware CAS owns the cache line for the duration;
the mutex's sync read/write events model exactly the ordering the
atomic provides), so the *structure* is lock-free retry: critical
sections are two or three accesses long, held counts are never waited
on inside, and contention shows up as version mismatches, not blocking.

Sharing shape: very short, very hot critical sections with
value-dependent control flow -- a retry re-executes the whole
load/compute/commit path.  Removing one reservation acquisition turns
the commit into a blind write: a lost update on the counter and a torn
version, the exact bug CAS exists to prevent.  Termination is
guaranteed without caps: a failed commit implies another thread's
commit succeeded in between (global progress, as with real CAS loops).
"""

from __future__ import annotations

from repro.program.builder import Program
from repro.program.address_space import AddressSpace
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import acquire, release
from repro.sync.objects import Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    pattern_rng,
    private_sweep,
)

#: Contended counters (every thread hits these) and per-thread cold ones.
N_HOT = 3
#: Words per counter: version + value.
COUNTER_WORDS = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    n_threads = params.n_threads
    commits = params.scaled(20)

    n_counters = N_HOT + n_threads
    reservation = [
        Mutex.allocate(space, "cas.%d" % c) for c in range(n_counters)
    ]
    counters = [
        space.alloc_array("counter.%d" % c, COUNTER_WORDS)
        for c in range(n_counters)
    ]
    scratch = [
        space.alloc_array("scratch.t%d" % t, 256) for t in range(n_threads)
    ]

    def make_body(slot):
        rng = pattern_rng(params, "casretry", slot)
        # Mostly hot counters; each thread also owns one cold counter,
        # whose CAS never fails (the uncontended fast path).
        targets = [
            rng.randrange(N_HOT) if rng.randrange(4) else N_HOT + slot
            for _ in range(commits)
        ]
        deltas = [1 + rng.randrange(3) for _ in range(commits)]

        def body(tid):
            cursor = 0
            for k in range(commits):
                c = targets[k]
                version_word = counters[c][0]
                value_word = counters[c][1]
                committed = False
                while not committed:
                    # Load-linked: atomically snapshot version + value.
                    yield from acquire(reservation[c])
                    seen = yield ReadOp(version_word)
                    value = yield ReadOp(value_word)
                    yield from release(reservation[c])
                    # Speculative work outside the atomic.
                    cursor = yield from private_sweep(
                        scratch[slot], cursor, 2
                    )
                    yield from compute(params.compute_grain // 4)
                    # Store-conditional: commit only if unclobbered.
                    yield from acquire(reservation[c])
                    current = yield ReadOp(version_word)
                    if (current or 0) == (seen or 0):
                        yield WriteOp(
                            value_word, (value or 0) + deltas[k]
                        )
                        yield WriteOp(version_word, (seen or 0) + 1)
                        committed = True
                    yield from release(reservation[c])

        return body

    bodies = [make_body(t) for t in range(n_threads)]
    return Program(bodies, space, name="casretry")


SPEC = WorkloadSpec(
    name="casretry",
    input_label="hot counters",
    description="optimistic CAS/retry fetch-and-add over hot counters "
                "with versioned commits",
    build=build,
    sync_style="CAS reservation micro-sections",
    family="server",
)
