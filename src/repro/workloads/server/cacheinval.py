"""Read-heavy cache with invalidation storms (``cacheinval``).

Thread 0 is the invalidator (the write path of a cache tier): it mostly
idles, then periodically sweeps a contiguous span of cache entries --
an invalidation storm -- rewriting each entry's value words and bumping
its version under the entry's stripe lock.  Threads 1..N-1 are the read
path: each loops over lookups, taking the stripe lock just long enough
to read the entry's version and value (a reader-lock critical section),
then doing per-lookup compute.

Sharing shape: overwhelmingly read-shared entries punctuated by bursts
where one writer marches through every stripe in order -- the cache
pattern where removing a single reader's lock acquisition makes it read
a torn entry mid-storm, and removing a writer's acquisition tears the
entry for every concurrent reader.  Lookup skew is Zipf-ish: a few hot
entries absorb most reads, so the hot stripes see real contention.
"""

from __future__ import annotations

from repro.program.builder import Program
from repro.program.address_space import AddressSpace
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import acquire, release
from repro.sync.objects import Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    pattern_rng,
    private_sweep,
)

#: Cache entries and their lock striping.
N_ENTRIES = 12
N_STRIPES = 4
#: Words per entry: version + two value words.
ENTRY_WORDS = 3
#: Entries rewritten per storm.
STORM_SPAN = 6


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    n_readers = params.n_threads - 1
    lookups = params.scaled(60)
    storms = params.scaled(6)

    stripe_locks = [
        Mutex.allocate(space, "stripe.%d" % s) for s in range(N_STRIPES)
    ]
    entries = [
        space.alloc_array("entry.%d" % e, ENTRY_WORDS)
        for e in range(N_ENTRIES)
    ]
    scratch = [
        space.alloc_array("scratch.r%d" % r, 256) for r in range(n_readers)
    ]

    def invalidator(tid):
        rng = pattern_rng(params, "cacheinval", 0).fork("storms")
        for storm in range(storms):
            # Idle phase between storms: the read-heavy steady state.
            yield from compute(params.compute_grain * 4)
            start = rng.randrange(N_ENTRIES)
            for step in range(STORM_SPAN):
                e = (start + step) % N_ENTRIES
                lock = stripe_locks[e % N_STRIPES]
                yield from acquire(lock)
                version = yield ReadOp(entries[e][0])
                yield WriteOp(entries[e][1], storm + 1)
                yield WriteOp(entries[e][2], e)
                yield WriteOp(entries[e][0], (version or 0) + 1)
                yield from release(lock)

    def reader(rid):
        rng = pattern_rng(params, "cacheinval", rid + 1)
        # Zipf-ish skew: half the lookups hit two hot entries.
        picks = [
            rng.randrange(2) if rng.randrange(2) else
            rng.randrange(N_ENTRIES)
            for _ in range(lookups)
        ]

        def body(tid):
            cursor = 0
            for k in range(lookups):
                e = picks[k]
                lock = stripe_locks[e % N_STRIPES]
                yield from acquire(lock)
                yield ReadOp(entries[e][0])
                yield ReadOp(entries[e][1])
                yield ReadOp(entries[e][2])
                yield from release(lock)
                cursor = yield from private_sweep(scratch[rid], cursor, 3)
                if k % 4 == 3:
                    yield from compute(params.compute_grain)

        return body

    bodies = [invalidator] + [reader(r) for r in range(n_readers)]
    return Program(bodies, space, name="cacheinval")


SPEC = WorkloadSpec(
    name="cacheinval",
    input_label="hot cache",
    description="read-heavy striped cache punctuated by one writer's "
                "invalidation storms",
    build=build,
    sync_style="striped read locks + storm writer",
    family="server",
)
