"""Request/worker-pool web server analogue (``webpool``).

Thread 0 is the acceptor: it materializes each incoming request's
payload, picks a worker, and hands the request over through that
worker's mailbox flag.  Threads 1..N-1 are pool workers: each waits on
its mailbox, parses the payload, does per-request compute against
private scratch, updates the request's session record under a striped
session lock, folds counters into global server stats under the stats
lock, and raises its completion flag.  The acceptor drains completions
before shutdown.

Sharing shape: payload words are written by the acceptor and read by
exactly one worker, ordered by the mailbox flag (a textbook
message-passing handoff -- removing the mailbox *wait* makes the worker
read a half-written request, the classic lost-handoff race).  Session
records are striped across a small lock array (per-request locking);
the stats words are the single hot lock every request crosses.
"""

from __future__ import annotations

from repro.program.builder import Program
from repro.program.address_space import AddressSpace
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import flag_set, flag_wait
from repro.sync.objects import Flag, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    pattern_rng,
    private_sweep,
    read_block,
)

#: Words per request payload (method, path hash, body words).
PAYLOAD_WORDS = 3
#: Session records and the stripe width of their lock array.
N_SESSIONS = 16
N_SESSION_LOCKS = 4
#: Words per session record (last-seen, hit count).
SESSION_WORDS = 2
#: Global stats words (requests, bytes, errors, latency accumulator).
STATS_WORDS = 4


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    n_workers = params.n_threads - 1
    requests_per_worker = params.scaled(30)

    mailbox = [
        Flag.allocate(space, "mailbox.w%d" % w) for w in range(n_workers)
    ]
    done = [
        Flag.allocate(space, "done.w%d" % w) for w in range(n_workers)
    ]
    session_locks = [
        Mutex.allocate(space, "session_lock.%d" % s)
        for s in range(N_SESSION_LOCKS)
    ]
    stats_lock = Mutex.allocate(space, "stats_lock")
    stats = space.alloc_array("stats", STATS_WORDS)
    sessions = [
        space.alloc_array("session.%d" % s, SESSION_WORDS)
        for s in range(N_SESSIONS)
    ]
    # One payload slab per (worker, request): the handoff flag orders
    # writer and reader, so slots never need recycling-synchronization.
    payloads = [
        space.alloc_array(
            "payload.w%d" % w, requests_per_worker * PAYLOAD_WORDS
        )
        for w in range(n_workers)
    ]
    scratch = [
        space.alloc_array("scratch.w%d" % w, 512) for w in range(n_workers)
    ]

    # The request schedule (which session each request touches, request
    # sizes) is build-time pattern randomness, shared by acceptor and
    # worker closures -- one input set, as with the Splash-2 analogues.
    rng = pattern_rng(params, "webpool", 0).fork("schedule")
    schedule = [
        [
            (rng.randrange(N_SESSIONS), 1 + rng.randrange(7))
            for _ in range(requests_per_worker)
        ]
        for _ in range(n_workers)
    ]

    def acceptor(tid):
        # Round-robin dispatch: write the payload, then publish it by
        # raising the worker's mailbox to the request ordinal.
        for k in range(requests_per_worker):
            for w in range(n_workers):
                session, size = schedule[w][k]
                base = k * PAYLOAD_WORDS
                yield WriteOp(payloads[w][base], session)
                yield WriteOp(payloads[w][base + 1], size)
                yield WriteOp(payloads[w][base + 2], k + 1)
                yield from flag_set(mailbox[w], k + 1)
            yield from compute(params.compute_grain // 4)
        # Graceful shutdown: reap every worker's completions, then read
        # the final stats (ordered by the done flags).
        for w in range(n_workers):
            yield from flag_wait(done[w], requests_per_worker)
        yield from read_block(stats)

    def worker(wid):
        def body(tid):
            cursor = 0
            for k in range(requests_per_worker):
                yield from flag_wait(mailbox[wid], k + 1)
                base = k * PAYLOAD_WORDS
                session = yield ReadOp(payloads[wid][base])
                size = yield ReadOp(payloads[wid][base + 1])
                yield ReadOp(payloads[wid][base + 2])
                size = size or 1
                # Per-request handler work against private scratch.
                cursor = yield from private_sweep(
                    scratch[wid], cursor, 4 + size
                )
                yield from compute(params.compute_grain)
                # Per-request session locking (striped).
                session = session or 0
                lock = session_locks[session % N_SESSION_LOCKS]
                yield from locked_update_block(
                    lock, sessions[session], delta=size
                )
                # Global stats: the one lock every request crosses.
                yield from locked_update_block(
                    stats_lock, stats[: 2 + (size & 1)], delta=size
                )
                yield from flag_set(done[wid], k + 1)

        return body

    bodies = [acceptor] + [worker(w) for w in range(n_workers)]
    return Program(bodies, space, name="webpool")


SPEC = WorkloadSpec(
    name="webpool",
    input_label="worker pool",
    description="acceptor + worker pool, mailbox handoff, striped "
                "session locks, hot stats lock",
    build=build,
    sync_style="flag handoff + striped locks",
    family="server",
)
