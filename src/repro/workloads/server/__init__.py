"""Server-shaped workload analogues (traffic patterns, not Splash-2).

The Splash-2 family reproduces the paper's Table 1; this family covers
the synchronization shapes a production service exercises -- the
patterns the ROADMAP's north star (heavy traffic, many concurrent
users) cares about:

* :mod:`~repro.workloads.server.webpool` -- request/worker-pool web
  server with per-request session locking;
* :mod:`~repro.workloads.server.pipeline` -- producer/consumer stage
  pipeline over bounded queues;
* :mod:`~repro.workloads.server.eventloop` -- async event-loop with
  I/O-completion handoff to a worker pool;
* :mod:`~repro.workloads.server.cacheinval` -- read-heavy cache with
  periodic invalidation storms;
* :mod:`~repro.workloads.server.casretry` -- lock-free CAS/retry
  counters (atomics modeled as reservation micro-critical-sections).

All five follow the Splash-2 analogues' contract exactly: deterministic
shape from ``pattern_seed``, scaling via :class:`WorkloadParams`, data
accesses race-free until the injector removes a sync instance, and a
:class:`WorkloadSpec` (``family="server"``) in the global registry, so
they flow through :class:`~repro.trace.packed.PackedTrace` recording,
injection campaigns, and sweeps unchanged.
"""

from repro.workloads.server import (  # noqa: F401
    cacheinval,
    casretry,
    eventloop,
    pipeline,
    webpool,
)

#: Registry order of the server family.
SPECS = [
    webpool.SPEC,
    pipeline.SPEC,
    eventloop.SPEC,
    cacheinval.SPEC,
    casretry.SPEC,
]
