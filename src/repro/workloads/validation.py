"""Workload validation and characterization.

The detection experiments assume each analogue is (a) data-race-free
until injected and (b) shaped like its model -- the Splash-2 namesake
for the paper's family, the traffic pattern for the server family.
This module checks (a) over many seeds and quantifies (b) as a
characterization table (Table 1 extended with the measured quantities
Section 3 discusses: access mix, synchronization census, sharing
footprint).  It is family-agnostic: it enumerates whatever the registry
holds and must keep working as families grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.texttable import format_table
from repro.detectors.ideal import IdealDetector
from repro.engine.executor import run_program
from repro.engine.interceptor import SyncInterceptor
from repro.program.ops import LockOp
from repro.trace.stats import compute_stats
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import all_workloads, get_workload


class _Census(SyncInterceptor):
    def __init__(self):
        self.locks = 0
        self.waits = 0

    def on_sync_instance(self, thread, op):
        if isinstance(op, LockOp):
            self.locks += 1
        else:
            self.waits += 1
        return False


@dataclass
class WorkloadProfile:
    """Measured characterization of one analogue."""

    name: str
    input_label: str
    events: int
    instructions: int
    sync_percent: float
    write_percent: float
    shared_words: int
    distinct_words: int
    lock_instances: int
    wait_instances: int
    footprint_kb: float

    @property
    def sharing_percent(self) -> float:
        if not self.distinct_words:
            return 0.0
        return 100.0 * self.shared_words / self.distinct_words


@dataclass
class ValidationReport:
    """Race-freedom verdicts plus profiles for a workload set."""

    profiles: List[WorkloadProfile] = field(default_factory=list)
    race_free: Dict[str, bool] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def all_race_free(self) -> bool:
        return all(self.race_free.values())

    def render(self) -> str:
        rows = [
            [
                profile.name,
                profile.events,
                "%.1f%%" % profile.sync_percent,
                "%.1f%%" % profile.write_percent,
                "%.0f%%" % profile.sharing_percent,
                profile.lock_instances,
                profile.wait_instances,
                "%.1f" % profile.footprint_kb,
                "yes" if self.race_free.get(profile.name) else "NO",
            ]
            for profile in self.profiles
        ]
        return format_table(
            ["app", "events", "sync", "writes", "shared",
             "locks", "waits", "KB", "race-free"],
            rows,
            title="Workload characterization (Table 1, measured)",
        )


def characterize(
    name: str,
    params: Optional[WorkloadParams] = None,
    seed: int = 1,
) -> WorkloadProfile:
    """Profile one analogue from a single clean run."""
    spec = get_workload(name)
    params = params or WorkloadParams()
    program = spec.build(params)
    census = _Census()
    trace = run_program(program, seed=seed, interceptor=census)
    stats = compute_stats(trace)
    return WorkloadProfile(
        name=spec.name,
        input_label=spec.input_label,
        events=stats.n_events,
        instructions=stats.n_instructions,
        sync_percent=100.0 * stats.sync_fraction,
        write_percent=100.0 * stats.write_fraction,
        shared_words=stats.shared_words,
        distinct_words=stats.distinct_words,
        lock_instances=census.locks,
        wait_instances=census.waits,
        footprint_kb=stats.distinct_words * 4 / 1024.0,
    )


def validate_workloads(
    names: Optional[Sequence[str]] = None,
    params: Optional[WorkloadParams] = None,
    seeds: Sequence[int] = (1, 2, 3),
    family: Optional[str] = None,
) -> ValidationReport:
    """Race-freedom over several seeds plus per-app profiles.

    Defaults to every registered workload; ``family`` scopes the sweep
    to one registry family when ``names`` is not given.
    """
    params = params or WorkloadParams()
    names = list(names) if names else [
        spec.name for spec in all_workloads(family)
    ]
    report = ValidationReport()
    for name in names:
        spec = get_workload(name)
        clean = True
        detail = ""
        for seed in seeds:
            program = spec.build(params)
            trace = run_program(program, seed=seed)
            if trace.hung:
                clean = False
                detail = "hung under seed %d" % seed
                break
            outcome = IdealDetector(program.n_threads).run(trace)
            if outcome.raw_count:
                clean = False
                detail = "race at %r under seed %d" % (
                    outcome.races[0].access, seed,
                )
                break
        report.race_free[name] = clean
        if not clean:
            report.failures[name] = detail
        report.profiles.append(characterize(name, params, seeds[0]))
    return report
