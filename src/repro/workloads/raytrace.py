"""Ray tracer analogue (Splash-2 ``raytrace``, input ``teapot``).

Rendering work is a central tile queue (one lock), the scene is read-only
shared data, and pixel output is written once per tile by whichever thread
claimed it.  The clean program is race-free because the queue hands each
tile to exactly one thread; removing a queue-lock instance lets two
threads claim -- and write -- the same tile, the canonical "lost task
mutual exclusion" bug.

A lock-protected camera/global-state block adds *long-range* sharing:
thread 0 updates it in layers early in the frame, and every thread reads
it at frame end under the same lock.  When the injector removes one of
those lock instances the resulting race spans most of the frame, so the
first access's cached history has often been displaced by then -- the
paper's "accesses too far apart" loss class (Figures 14/15).
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import acquire, barrier_wait, release
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    pattern_rng,
    pop_task,
    private_sweep,
    read_block,
    write_block,
)

SCENE_WORDS = 128
PIXELS_PER_TILE = 4


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    done_barrier = Barrier.allocate(space, params.n_threads, "frame")
    queue_lock = Mutex.allocate(space, "tiles")
    queue_head = space.alloc("tiles.head", align_to_line=True)
    scene = space.alloc_array("scene", SCENE_WORDS)
    n_tiles = params.scaled(60)
    image = space.alloc_array("image", n_tiles * PIXELS_PER_TILE)

    scratch = [
        space.alloc_array("raystack.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    camera_lock = Mutex.allocate(space, "camera")
    camera = space.alloc_array("camera", 8)
    # Anti-aliasing pass: a second, smaller tile queue re-traces a
    # subset of tiles and accumulates into the same pixels (ordered by
    # the inter-pass barrier).
    aa_lock = Mutex.allocate(space, "aa")
    aa_head = space.alloc("aa.head", align_to_line=True)
    aa_tiles = max(4, n_tiles // 3)

    def body(tid):
        rng = pattern_rng(params, "raytrace", tid)
        cursor = 0
        tiles_done = 0
        while True:
            tile = yield from pop_task(queue_lock, queue_head, n_tiles)
            if tile is None:
                break
            tiles_done += 1
            if tid == 0 and tiles_done % 5 in (1, 3):
                # Layered camera updates: distinct clock epochs on the
                # same line, so two-entry histories shed the oldest.
                start = 2 * ((tiles_done // 2) % 3)
                yield from acquire(camera_lock)
                yield from write_block(camera[start:start + 4], tid + 1)
                yield from release(camera_lock)
            elif tiles_done % 5 == 0:
                # Periodic camera consultation, far from the updates.
                yield from acquire(camera_lock)
                yield from read_block(camera)
                yield from release(camera_lock)
            # Trace rays: many read-only scene lookups, private ray-stack
            # traffic, heavy compute.
            for _bounce in range(3):
                base = rng.randrange(SCENE_WORDS - 8)
                yield from read_block(scene[base:base + 8])
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 12
                )
                yield from compute(params.compute_grain * 4)
            yield from write_block(
                image[
                    tile * PIXELS_PER_TILE:(tile + 1) * PIXELS_PER_TILE
                ],
                tid + 1,
            )
        # Frame end: read the camera state for the next frame's setup.
        yield from acquire(camera_lock)
        yield from read_block(camera)
        yield from release(camera_lock)
        yield from barrier_wait(done_barrier)
        # Anti-aliasing pass over a subset of tiles.
        while True:
            tile = yield from pop_task(aa_lock, aa_head, aa_tiles)
            if tile is None:
                break
            base_addr = rng.randrange(SCENE_WORDS - 8)
            yield from read_block(scene[base_addr:base_addr + 8])
            cursor = yield from private_sweep(scratch[tid], cursor, 10)
            yield from compute(params.compute_grain * 3)
            for pixel in image[
                tile * PIXELS_PER_TILE:(tile + 1) * PIXELS_PER_TILE
            ]:
                value = yield ReadOp(pixel)
                yield WriteOp(pixel, (value or 0) + tid + 1)
        yield from barrier_wait(done_barrier)

    return Program(
        [body] * params.n_threads, space, name="raytrace"
    )


SPEC = WorkloadSpec(
    name="raytrace",
    input_label="teapot",
    description="central tile queue, read-only scene, per-tile pixels",
    build=build,
    sync_style="task queue",
)
