"""Water simulation, spatial version (Splash-2 ``water-sp``, input ``216``).

The spatial variant partitions molecules into a 3-D cell grid; each thread
owns a block of cells and only interacts with neighboring cells, so lock
traffic is far sparser than water-n2's: boundary-cell accumulations take
the neighbor cell's lock, interior work is lock-free, and steps are
barrier-separated.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import barrier_wait
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    private_sweep,
    read_block,
    write_block,
)

CELL_POS_WORDS = 6
CELL_ACC_WORDS = 2
STEPS = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    step_barrier = Barrier.allocate(space, params.n_threads, "step")
    cells_per_thread = params.scaled(4, minimum=2)
    n_cells = cells_per_thread * params.n_threads
    locks = [
        Mutex.allocate(space, "cell%d" % c) for c in range(n_cells)
    ]
    cell_pos = [
        space.alloc_array("cpos%d" % c, CELL_POS_WORDS)
        for c in range(n_cells)
    ]
    cell_acc = [
        space.alloc_array("cacc%d" % c, CELL_ACC_WORDS)
        for c in range(n_cells)
    ]

    scratch = [
        space.alloc_array("intrabuf.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]

    def body(tid):
        owned = range(
            tid * cells_per_thread, (tid + 1) * cells_per_thread
        )
        cursor = 0
        for _step in range(STEPS):
            for cell in owned:
                neighbor = (cell + 1) % n_cells
                shell = (cell + 2) % n_cells
                # Interior interactions: read own + first- and second-
                # shell neighbor positions, intra-molecular work on
                # private buffers.
                yield from read_block(cell_pos[cell])
                yield from read_block(cell_pos[neighbor][:3])
                yield from read_block(cell_pos[shell][:2])
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 16
                )
                yield from compute(params.compute_grain * 2)
                # Own-cell accumulation still takes the cell lock (a
                # boundary molecule of the neighbor may target it too).
                yield from locked_update_block(
                    locks[cell], cell_acc[cell]
                )
                # Boundary contribution to the neighbor cell.
                yield from locked_update_block(
                    locks[neighbor], cell_acc[neighbor]
                )
            yield from barrier_wait(step_barrier)
            # Integrate: owners write their cells' positions.
            for cell in owned:
                yield from read_block(cell_acc[cell])
                yield from compute(params.compute_grain)
                yield from write_block(cell_pos[cell], tid + 1)
            yield from barrier_wait(step_barrier)

    return Program(
        [body] * params.n_threads, space, name="water-sp"
    )


SPEC = WorkloadSpec(
    name="water-sp",
    input_label="216 molecules",
    description="spatial cells with neighbor-boundary accumulation locks",
    build=build,
    sync_style="sparse cell locks + barriers",
)
