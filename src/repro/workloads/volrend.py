"""Volume renderer analogue (Splash-2 ``volrend``, input ``head-sd2``).

Like raytrace, volrend is queue-driven rendering over read-only data, but
it renders multiple frames with a barrier between them and a lock-protected
shared opacity/statistics record updated per tile -- giving it more
synchronization variety than raytrace (which is why their detection rates
differ in the paper's figures despite similar structure).
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import acquire, barrier_wait, release
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    pattern_rng,
    pop_task,
    private_sweep,
    read_block,
    write_block,
)

VOLUME_WORDS = 96
PIXELS_PER_TILE = 2
FRAMES = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    frame_barrier = Barrier.allocate(space, params.n_threads, "frame")
    queue_lock = Mutex.allocate(space, "tiles")
    queue_head = space.alloc("tiles.head", align_to_line=True)
    stats_lock = Mutex.allocate(space, "stats")
    stats = space.alloc_array("stats", 4)
    volume = space.alloc_array("volume", VOLUME_WORDS)
    tiles_per_frame = params.scaled(40)
    image = space.alloc_array(
        "image", tiles_per_frame * PIXELS_PER_TILE
    )

    scratch = [
        space.alloc_array("raybuf.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    # Transfer-function block: long-range lock-protected sharing (see the
    # raytrace camera block) -- updated in layers by thread 0 early in
    # each frame, read by everyone at frame end.
    tfunc_lock = Mutex.allocate(space, "tfunc")
    tfunc = space.alloc_array("tfunc", 8)
    # Octree skip structure: read per tile by everyone; adapted between
    # frames by thread 0 under its own lock.
    octree_lock = Mutex.allocate(space, "octree")
    octree = space.alloc_array("octree", 16)

    def body(tid):
        rng = pattern_rng(params, "volrend", tid)
        cursor = 0
        for frame in range(FRAMES):
            limit = tiles_per_frame * (frame + 1)
            tiles_done = 0
            while True:
                ticket = yield from pop_task(
                    queue_lock, queue_head, limit
                )
                if ticket is None:
                    break
                tile = ticket % tiles_per_frame
                tiles_done += 1
                if tid == 0 and tiles_done % 4 in (1, 2):
                    layer = tiles_done % 3
                    yield from acquire(tfunc_lock)
                    yield from write_block(
                        tfunc[2 * layer:2 * layer + 4], tid + 1
                    )
                    yield from release(tfunc_lock)
                elif tiles_done % 4 == 0:
                    yield from acquire(tfunc_lock)
                    yield from read_block(tfunc)
                    yield from release(tfunc_lock)
                # Consult the octree skip structure, then ray-cast
                # through the read-only volume with private buffers.
                yield from acquire(octree_lock)
                yield from read_block(octree[:4])
                yield from release(octree_lock)
                for _sample in range(2):
                    base = rng.randrange(VOLUME_WORDS - 8)
                    yield from read_block(volume[base:base + 8])
                    cursor = yield from private_sweep(
                        scratch[tid], cursor, 12
                    )
                    yield from compute(params.compute_grain * 3)
                yield from write_block(
                    image[
                        tile * PIXELS_PER_TILE:
                        (tile + 1) * PIXELS_PER_TILE
                    ],
                    tid + 1,
                )
                yield from locked_update_block(
                    stats_lock, stats[:2]
                )
            # Frame end: read the transfer function for the next frame;
            # thread 0 adapts the octree for the next frame.
            yield from acquire(tfunc_lock)
            yield from read_block(tfunc)
            yield from release(tfunc_lock)
            if tid == 0:
                yield from acquire(octree_lock)
                yield from write_block(octree[:8], frame + 2)
                yield from release(octree_lock)
            yield from barrier_wait(frame_barrier)

    return Program(
        [body] * params.n_threads, space, name="volrend"
    )


SPEC = WorkloadSpec(
    name="volrend",
    input_label="head-sd2",
    description="frame-barriered tile queue with shared statistics lock",
    build=build,
    sync_style="task queue + stats lock + barriers",
)
