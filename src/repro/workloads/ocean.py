"""Ocean simulation analogue (Splash-2 ``ocean``, input ``130x130``).

A red/black Gauss-Seidel style grid solver: each thread owns a band of
rows; every sweep reads the thread's own rows plus the *boundary rows* of
its neighbors (nearest-neighbor sharing) and writes its own rows, with a
barrier per sweep and a lock-protected global error reduction -- the exact
mix Splash-2 ocean exhibits.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import barrier_wait
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_rmw,
    private_sweep,
    read_block,
    write_block,
)

ROW_WORDS = 16
SWEEPS = 3
COARSE_SWEEPS = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    sweep_barrier = Barrier.allocate(space, params.n_threads, "sweep")
    error_lock = Mutex.allocate(space, "error")
    error_word = space.alloc("error", align_to_line=True)
    rows_per_thread = params.scaled(8, minimum=2)
    # Double-buffered grid (sweep reads buffer A, writes buffer B, then
    # swaps): the real solver's discipline, and what keeps the clean
    # program data-race-free while still sharing boundary rows.
    grids = [
        [
            [
                space.alloc_array(
                    "grid%d.t%d.%d" % (g, t, r), ROW_WORDS
                )
                for r in range(rows_per_thread)
            ]
            for t in range(params.n_threads)
        ]
        for g in range(2)
    ]

    scratch = [
        space.alloc_array("workrow.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    # Multigrid coarse level: half-resolution rows, double-buffered like
    # the fine grid (the real solver's W-cycle structure).
    coarse_rows = max(2, rows_per_thread // 2)
    coarse = [
        [
            [
                space.alloc_array(
                    "coarse%d.t%d.%d" % (g, t, r), ROW_WORDS // 2
                )
                for r in range(coarse_rows)
            ]
            for t in range(params.n_threads)
        ]
        for g in range(2)
    ]

    def body(tid):
        above = (tid - 1) % params.n_threads
        below = (tid + 1) % params.n_threads
        cursor = 0
        for sweep in range(SWEEPS):
            src = grids[sweep % 2]
            dst = grids[(sweep + 1) % 2]
            for r in range(rows_per_thread):
                # Stencil: own row plus neighbor boundary rows at band
                # edges, all from the read buffer.
                yield from read_block(src[tid][r][:8])
                if r == 0:
                    yield from read_block(src[above][-1][:8])
                if r == rows_per_thread - 1:
                    yield from read_block(src[below][0][:8])
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 12
                )
                yield from compute(params.compute_grain * 2)
                yield from write_block(dst[tid][r][:8], tid + 1)
            # Global convergence test: lock-protected error accumulation.
            yield from locked_rmw(error_lock, error_word)
            yield from barrier_wait(sweep_barrier)

        # Restriction: project owned fine rows onto the coarse level
        # (purely owner-local) and relax the coarse grid with the same
        # double-buffered neighbor-sharing sweeps.
        for r in range(coarse_rows):
            fine_row = min(2 * r, rows_per_thread - 1)
            yield from read_block(grids[SWEEPS % 2][tid][fine_row][:4])
            yield from write_block(coarse[0][tid][r][:4], tid + 1)
        yield from barrier_wait(sweep_barrier)
        for sweep in range(COARSE_SWEEPS):
            src = coarse[sweep % 2]
            dst = coarse[(sweep + 1) % 2]
            for r in range(coarse_rows):
                yield from read_block(src[tid][r][:4])
                if r == 0:
                    yield from read_block(src[above][-1][:4])
                if r == coarse_rows - 1:
                    yield from read_block(src[below][0][:4])
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 6
                )
                yield from compute(params.compute_grain)
                yield from write_block(dst[tid][r][:4], tid + 1)
            yield from locked_rmw(error_lock, error_word)
            yield from barrier_wait(sweep_barrier)

    return Program([body] * params.n_threads, space, name="ocean")


SPEC = WorkloadSpec(
    name="ocean",
    input_label="130x130 grid",
    description="row-banded stencil with neighbor boundary sharing",
    build=build,
    sync_style="barriers + reduction lock",
)
