"""Water simulation, O(n^2) version (Splash-2 ``water-n2``, input ``216``).

Per time step: every thread computes forces for a slice of molecule pairs
(reading both molecules' positions -- all-to-all read sharing) and
accumulates into each molecule's force record under that molecule's lock;
after a barrier, each thread integrates its *own* molecules (private
writes); another barrier closes the step.  Water-n2 is the app where the
paper's CORD found none of the injected problems while vector clocks found
some -- heavy symmetric locking defeats scalar clocks -- so reproducing
its lock density matters.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import barrier_wait
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    private_sweep,
    read_block,
    write_block,
)

POS_WORDS = 3
FORCE_WORDS = 2
STEPS = 2


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    step_barrier = Barrier.allocate(space, params.n_threads, "step")
    n_molecules = params.scaled(16, minimum=params.n_threads * 2)
    locks = [
        Mutex.allocate(space, "mol%d" % i) for i in range(n_molecules)
    ]
    positions = [
        space.alloc_array("pos%d" % i, POS_WORDS)
        for i in range(n_molecules)
    ]
    forces = [
        space.alloc_array("force%d" % i, FORCE_WORDS)
        for i in range(n_molecules)
    ]

    pairs = [
        (i, j)
        for i in range(n_molecules)
        for j in range(i + 1, n_molecules)
    ]

    scratch = [
        space.alloc_array("pairbuf.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    kinetic_lock = Mutex.allocate(space, "kinetic")
    kinetic = space.alloc("kinetic", align_to_line=True)

    def body(tid):
        my_pairs = pairs[tid::params.n_threads]
        my_molecules = range(tid, n_molecules, params.n_threads)
        cursor = 0
        for _step in range(STEPS):
            for i, j in my_pairs:
                yield from read_block(positions[i])
                yield from read_block(positions[j])
                cursor = yield from private_sweep(
                    scratch[tid], cursor, 10
                )
                yield from compute(params.compute_grain * 3)
                yield from locked_update_block(locks[i], forces[i])
                yield from locked_update_block(locks[j], forces[j])
            yield from barrier_wait(step_barrier)
            # Integrate owned molecules: read accumulated force, write
            # position.  Force words were locked-written before the
            # barrier; positions are written only by the owner.
            for m in my_molecules:
                yield from read_block(forces[m])
                yield from compute(params.compute_grain)
                yield from write_block(positions[m], tid + 1)
            # Per-step kinetic-energy reduction: read own molecules,
            # accumulate the partial sum under the global lock.
            for m in my_molecules:
                yield from read_block(positions[m][:1])
            yield from compute(params.compute_grain)
            yield from locked_update_block(kinetic_lock, [kinetic])
            yield from barrier_wait(step_barrier)

    return Program(
        [body] * params.n_threads, space, name="water-n2"
    )


SPEC = WorkloadSpec(
    name="water-n2",
    input_label="216 molecules",
    description="O(n^2) pair forces with per-molecule accumulation locks",
    build=build,
    sync_style="dense molecule locks + barriers",
)
