"""Sparse Cholesky factorization analogue (Splash-2 ``cholesky``, ``tk23.0``).

Cholesky is the paper's most synchronization-intensive application -- it is
the 3 % worst case of Figure 11 because frequent small critical sections
cause bursts of timestamp changes and race-check traffic.  The analogue
reproduces that: a lock-protected global task queue hands out supernode
update tasks, and every task takes a second fine-grained lock on its
destination column for a short read-modify-write.
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.sync.library import barrier_wait, flag_set, flag_wait
from repro.sync.objects import Barrier, Flag, Mutex
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import acquire, release
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    pattern_rng,
    pop_task,
    private_sweep,
    read_block,
)

N_COLUMNS = 24
COLUMN_WORDS = 8


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    done_barrier = Barrier.allocate(space, params.n_threads, "done")
    queue_lock = Mutex.allocate(space, "queue")
    queue_head = space.alloc("queue.head", align_to_line=True)
    column_locks = [
        Mutex.allocate(space, "col%d" % i) for i in range(N_COLUMNS)
    ]
    columns = [
        space.alloc_array("col%d.data" % i, COLUMN_WORDS)
        for i in range(N_COLUMNS)
    ]
    n_tasks = params.scaled(120)
    scratch = [
        space.alloc_array("scratch.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]

    # Fixed task shapes: (source column, destination column) pairs drawn
    # from the pattern stream so every run factors the same "matrix".
    shape_rng = pattern_rng(params, "cholesky", 0).fork("tasks")
    tasks = []
    for _ in range(n_tasks):
        src = shape_rng.randrange(N_COLUMNS)
        dst = shape_rng.randrange(N_COLUMNS)
        tasks.append((src, dst))

    # Elimination-tree completion: each column carries a done-flag set by
    # whichever task applies its final update (tracked with a counter
    # under the column lock).  A follow-up verification pass waits on a
    # column's flag before reading its factors -- the real solver's
    # supernode dependency structure.  Removing one of those flag waits
    # creates a long-range race against lock-protected factor writes.
    updates_expected = [0] * N_COLUMNS
    for _src, dst in tasks:
        updates_expected[dst] += 1
    done_flags = [
        Flag.allocate(space, "done%d" % c) for c in range(N_COLUMNS)
    ]
    update_counts = [
        space.alloc("col%d.updates" % c, 1) for c in range(N_COLUMNS)
    ]

    def body(tid):
        cursor = 0
        while True:
            index = yield from pop_task(queue_lock, queue_head, n_tasks)
            if index is None:
                break
            src, dst = tasks[index]
            cursor = yield from private_sweep(scratch[tid], cursor, 14)
            # Words 4..7 of a column are its (immutable) structure and are
            # read without locks; words 0..2 are the accumulated factors
            # and are only touched under the column lock, so the clean
            # program is data-race-free.
            yield from read_block(columns[src][4:8])
            yield from compute(max(1, params.compute_grain // 3))
            yield from acquire(column_locks[dst])
            for address in columns[dst][:3]:
                value = yield ReadOp(address)
                yield WriteOp(address, (value or 0) + 1)
            applied = yield ReadOp(update_counts[dst])
            applied = (applied or 0) + 1
            yield WriteOp(update_counts[dst], applied)
            yield from release(column_locks[dst])
            if applied == updates_expected[dst]:
                yield from flag_set(done_flags[dst], 1)
        # Verification pass: check a slice of completed columns' factors
        # (waits on the elimination-tree done flags).
        for column in range(tid, N_COLUMNS, params.n_threads):
            if updates_expected[column] == 0:
                continue
            yield from flag_wait(done_flags[column], 1)
            yield from read_block(columns[column][:3])
            yield from compute(max(1, params.compute_grain // 3))
        yield from barrier_wait(done_barrier)

    return Program(
        [body] * params.n_threads, space, name="cholesky"
    )


SPEC = WorkloadSpec(
    name="cholesky",
    input_label="tk23.O",
    description="lock-heavy supernode task queue with per-column locks",
    build=build,
    sync_style="task queue + column locks",
)
