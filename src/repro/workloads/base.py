"""Workload plumbing: specs, parameters, and reusable program idioms.

A workload module defines a ``build(params) -> Program`` function plus a
:class:`WorkloadSpec` describing it (name, the paper's Table 1 input label,
and the synchronization idioms it exercises).  Builders compose the idiom
helpers below -- lock-protected task queues, read-modify-writes, phased
compute -- with :mod:`repro.sync` primitives.

Determinism contract: all pattern randomness is drawn from
:class:`~repro.common.rng.DeterministicRng` streams forked from the
workload's fixed ``pattern_seed`` and the thread id, never from the
scheduler, so record and replay see identical programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Generator, List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.program.builder import Program
from repro.program.ops import ComputeOp, Op, ReadOp, WriteOp
from repro.sync.library import acquire, release
from repro.sync.objects import Mutex

OpGen = Generator[Op, Optional[int], None]

#: Default thread count, matching the paper's 4-processor runs.
DEFAULT_THREADS = 4


@dataclass(frozen=True)
class WorkloadParams:
    """Scaling knobs shared by all workload builders.

    Attributes:
        n_threads: worker thread count.
        scale: multiplies iteration counts; 1.0 is the reduced-input
            default used by the benchmarks, tests use smaller values.
        compute_grain: compute units issued per modeled "flop block".
            The default (500) calibrates the trace's shared-access density
            to roughly one shared access per few dozen CPU cycles, as on
            real hardware; detection results are insensitive to it, only
            the timing model (Figure 11) consumes compute time.
        pattern_seed: fixed seed for the workload's shape randomness.
    """

    n_threads: int = DEFAULT_THREADS
    scale: float = 1.0
    compute_grain: int = 500
    pattern_seed: int = 95014

    def __post_init__(self):
        if self.n_threads < 2:
            raise ConfigError("workloads need >= 2 threads")
        if self.scale <= 0:
            raise ConfigError("scale must be > 0")
        if self.compute_grain < 1:
            raise ConfigError("compute_grain must be >= 1")

    def scaled(self, count: int, minimum: int = 1) -> int:
        """Scale an iteration count, clamped below by ``minimum``."""
        return max(minimum, int(round(count * self.scale)))

    def with_scale(self, scale: float) -> "WorkloadParams":
        return replace(self, scale=scale)


@dataclass(frozen=True)
class WorkloadSpec:
    """One registry row: a named, buildable application analogue.

    Attributes:
        name: application name (for the Splash-2 family, matches the
            paper's Table 1; server-family names describe the traffic
            shape).
        input_label: input-set label (the paper's for Splash-2, a
            workload-shape summary for other families).
        description: one-line summary of the analogue's structure.
        build: ``params -> Program`` factory.
        sync_style: dominant synchronization idiom (diagnostics).
        family: registry family the workload belongs to (``"splash2"``
            for the paper's Table 1 analogues, ``"server"`` for the
            request/traffic-shaped generators).
    """

    name: str
    input_label: str
    description: str
    build: Callable[[WorkloadParams], Program]
    sync_style: str = "barriers"
    family: str = "splash2"

    def program_factory(
        self, params: Optional[WorkloadParams] = None
    ) -> Callable[[int], Program]:
        """Adapt to the campaign's ``seed -> Program`` factory interface.

        The seed is ignored: workload shapes are fixed (one binary, one
        input), and run-to-run variation comes from the scheduler.
        Because of that -- and because programs are restartable
        (:meth:`Program.instantiate` creates fresh generators per run) --
        the factory builds the program once and hands every run the same
        object, so an N-run campaign pays for one build instead of N.
        """
        resolved = params or WorkloadParams()
        built: List[Program] = []

        def factory(_seed: int) -> Program:
            if not built:
                built.append(self.build(resolved))
            return built[0]

        return factory


# -- reusable idioms -----------------------------------------------------------


def pattern_rng(params: WorkloadParams, name: str, tid: int):
    """Per-thread deterministic pattern stream."""
    root = DeterministicRng(params.pattern_seed, name)
    return root.fork("t%d" % tid)


def compute(units: int) -> OpGen:
    """Local computation of ``units`` instruction slots."""
    if units > 0:
        yield ComputeOp(units)


def locked_rmw(mutex: Mutex, address: int, delta: int = 1) -> OpGen:
    """Lock-protected increment of one shared word."""
    yield from acquire(mutex)
    value = yield ReadOp(address)
    yield WriteOp(address, (value or 0) + delta)
    yield from release(mutex)


def locked_update_block(
    mutex: Mutex, addresses, delta: int = 1
) -> OpGen:
    """Lock-protected read-modify-write of several words (a record)."""
    yield from acquire(mutex)
    for address in addresses:
        value = yield ReadOp(address)
        yield WriteOp(address, (value or 0) + delta)
    yield from release(mutex)


def pop_task(mutex: Mutex, head_address: int, limit: int) -> OpGen:
    """Pop the next index from a lock-protected shared counter queue.

    Returns the claimed index, or None when the queue is exhausted.  This
    is the Splash-2 "GET_TASK" idiom; with the lock injected away, two
    threads can claim the same task -- one of the classic races the paper
    hunts.
    """
    yield from acquire(mutex)
    index = yield ReadOp(head_address)
    index = index or 0
    if index < limit:
        yield WriteOp(head_address, index + 1)
    yield from release(mutex)
    return index if index < limit else None


def read_block(addresses) -> OpGen:
    """Read several shared words (discarding values)."""
    for address in addresses:
        yield ReadOp(address)


def write_block(addresses, value: int = 1) -> OpGen:
    """Write several shared words."""
    for address in addresses:
        yield WriteOp(address, value)


#: Word step between consecutive private-sweep touches.  A stride above
#: the per-line word count spreads each sweep over several cache lines,
#: modeling record-structured private data and applying realistic capacity
#: pressure to small metadata caches (the paper's reduced-cache method).
SWEEP_STRIDE = 5


def private_sweep(addresses, cursor: int, count: int,
                  stride: int = SWEEP_STRIDE) -> OpGen:
    """Read-modify-write ``count`` strided words of a thread-private array.

    Real applications spend most of their memory traffic on private data
    (locals, per-thread buffers); that traffic dilutes the shared-access
    density, earns CORD's per-line check-filter bits (making the fast path
    dominant, as in hardware), and applies capacity pressure to the
    metadata caches.  ``cursor`` tracks the walk position across calls;
    the helper returns the new cursor.
    """
    n = len(addresses)
    for offset in range(count):
        address = addresses[(cursor + offset * stride) % n]
        value = yield ReadOp(address)
        yield WriteOp(address, (value or 0) + 1)
    return (cursor + count * stride) % n
