"""Radiosity analogue (Splash-2 ``radiosity``, input ``-test``).

Radiosity is the Splash-2 app with the most irregular, lock-dominated
behavior: per-thread distributed task queues with work stealing, and
per-patch locks guarding energy accumulation.  (It is also the app whose
Ideal-configuration simulation exceeded 2 GB in the paper -- task-driven
irregularity makes its access histories huge.)
"""

from __future__ import annotations

from repro.program.address_space import AddressSpace
from repro.program.builder import Program
from repro.program.ops import ReadOp, WriteOp
from repro.sync.library import acquire, barrier_wait, release
from repro.sync.objects import Barrier, Mutex
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    compute,
    locked_update_block,
    pattern_rng,
    pop_task,
    private_sweep,
    read_block,
    write_block,
)

N_PATCHES = 40
PATCH_WORDS = 4


def build(params: WorkloadParams) -> Program:
    space = AddressSpace()
    done_barrier = Barrier.allocate(space, params.n_threads, "done")
    queue_locks = [
        Mutex.allocate(space, "queue%d" % t)
        for t in range(params.n_threads)
    ]
    queue_heads = [
        space.alloc("queue%d.head" % t, align_to_line=True)
        for t in range(params.n_threads)
    ]
    # Dynamic task creation: queue limits are shared words that owners
    # grow under their queue lock (radiosity's BF-refinement spawns).
    queue_limits = [
        space.alloc("queue%d.limit" % t, 1)
        for t in range(params.n_threads)
    ]
    tasks_per_queue = params.scaled(30)
    spawn_budget = max(2, tasks_per_queue // 5)
    patch_locks = [
        Mutex.allocate(space, "patch%d" % i) for i in range(N_PATCHES)
    ]
    patches = [
        space.alloc_array("patch%d" % i, PATCH_WORDS)
        for i in range(N_PATCHES)
    ]

    shape_rng = pattern_rng(params, "radiosity", 0).fork("tasks")
    # task index -> (source patch, destination patch)
    interactions = [
        (
            shape_rng.randrange(N_PATCHES),
            shape_rng.randrange(N_PATCHES),
        )
        for _ in range(tasks_per_queue * params.n_threads)
    ]

    scratch = [
        space.alloc_array("formfactor.t%d" % t, 2048)
        for t in range(params.n_threads)
    ]
    # Global energy-estimate block: long-range lock-protected sharing --
    # layered early updates by thread 0, end-of-iteration reads by all
    # (the Figure 14/15 "far apart" loss class; see raytrace).
    energy_lock = Mutex.allocate(space, "energy")
    energy = space.alloc_array("energy", 8)

    def run_task(tid, owner, index, cursor):
        src, dst = interactions[
            (owner * tasks_per_queue + index) % len(interactions)
        ]
        yield from read_block(patches[src][:2])
        # Form-factor computation on private visibility buffers.
        cursor = yield from private_sweep(scratch[tid], cursor, 12)
        yield from compute(params.compute_grain * 4)
        yield from locked_update_block(
            patch_locks[dst], patches[dst][2:4]
        )
        return cursor

    def dynamic_pop(tid, victim):
        # Pop against the victim's *dynamic* limit (base + spawned).
        yield from acquire(queue_locks[victim])
        head = yield ReadOp(queue_heads[victim])
        head = head or 0
        extra = yield ReadOp(queue_limits[victim])
        limit = tasks_per_queue + (extra or 0)
        if head < limit:
            yield WriteOp(queue_heads[victim], head + 1)
        yield from release(queue_locks[victim])
        return head if head < limit else None

    def body(tid):
        cursor = 0
        tasks_done = 0
        spawned = 0
        # Drain own queue, then steal round-robin from the others.
        for victim_offset in range(params.n_threads):
            victim = (tid + victim_offset) % params.n_threads
            while True:
                index = yield from dynamic_pop(tid, victim)
                if index is None:
                    break
                # Refinement occasionally spawns a new task onto the
                # worker's *own* queue.
                if (
                    victim == tid
                    and spawned < spawn_budget
                    and index % 7 == 3
                ):
                    spawned += 1
                    yield from acquire(queue_locks[tid])
                    extra = yield ReadOp(queue_limits[tid])
                    yield WriteOp(queue_limits[tid], (extra or 0) + 1)
                    yield from release(queue_locks[tid])
                tasks_done += 1
                if tid == 0 and tasks_done % 4 in (1, 2):
                    layer = tasks_done % 3
                    yield from acquire(energy_lock)
                    yield from write_block(
                        energy[2 * layer:2 * layer + 4], tid + 1
                    )
                    yield from release(energy_lock)
                elif tasks_done % 4 == 0:
                    yield from acquire(energy_lock)
                    yield from read_block(energy)
                    yield from release(energy_lock)
                cursor = yield from run_task(tid, victim, index, cursor)
        # Iteration end: read the global energy estimate.
        yield from acquire(energy_lock)
        yield from read_block(energy)
        yield from release(energy_lock)
        yield from barrier_wait(done_barrier)

    return Program(
        [body] * params.n_threads, space, name="radiosity"
    )


SPEC = WorkloadSpec(
    name="radiosity",
    input_label="-test scene",
    description="work-stealing task queues with per-patch locks",
    build=build,
    sync_style="distributed queues + patch locks",
)
